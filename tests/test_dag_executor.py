"""The unified work-stealing DAG executor and its determinism contract.

Covers the transport layer, the executor's ordered-reassembly and
stats accounting, the ambient ``"dag"`` backend wiring, the
``exec_plan`` profile field, optimizer-level serial/DAG parity
(including exact evaluator-counter parity), and nested-grid
byte-identical reports over thread and process transports.
"""

import json
from dataclasses import dataclass, replace

import pytest

from repro.exec import (
    DagExecutor,
    ExecutorStats,
    PoolTransport,
    SerialBackend,
    SerialTransport,
    SharedExecutorBackend,
    ambient_backend,
    current_executor,
    executor_scope,
    resolve_backend,
    resolve_transport,
)
from repro.experiments import ExperimentProfile, run_table3
from repro.experiments.common import EXEC_PLANS, build_optimizer, run_cells
from repro.experiments.runner import render_report, run_all
from repro.taskgraph import RandomGraphConfig, random_task_graph


# Parts of this module deliberately exercise the deprecated per-cut
# pools — they remain the legacy-parity reference paths.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _square(value):
    return value * value


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny",
        search_iterations=150,
        sa_iterations=300,
        fig3_mappings=40,
        stop_after_feasible=2,
        seed=0,
    )


@pytest.fixture(scope="module")
def tiny_app():
    config = RandomGraphConfig(num_tasks=12)
    return random_task_graph(config, seed=3), config.deadline_s


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class TestTransports:
    def test_serial_transport_runs_inline(self):
        transport = SerialTransport()
        future = transport.submit(_square, 7)
        assert future.done() and future.result() == 49

    def test_serial_transport_captures_exceptions(self):
        transport = SerialTransport()
        future = transport.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_pool_transport_thread(self):
        transport = PoolTransport("thread", max_workers=2)
        try:
            futures = [transport.submit(_square, n) for n in range(6)]
            assert [f.result() for f in futures] == [n * n for n in range(6)]
        finally:
            transport.close()

    def test_pool_transport_rejects_bad_args(self):
        with pytest.raises(ValueError, match="unknown pool transport"):
            PoolTransport("gpu")
        with pytest.raises(ValueError, match="must be positive"):
            PoolTransport("thread", max_workers=0)

    def test_resolve_transport_explicit(self):
        assert isinstance(resolve_transport("serial"), SerialTransport)
        thread = resolve_transport("thread", max_workers=3)
        assert isinstance(thread, PoolTransport) and thread.name == "thread"
        process = resolve_transport("process")
        assert isinstance(process, PoolTransport) and process.name == "process"

    def test_resolve_transport_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("gpu")

    def test_resolve_transport_auto_unpicklable_degrades(self):
        probe = lambda: None  # noqa: E731 - deliberately unpicklable
        assert isinstance(
            resolve_transport("auto", payload_probe=probe), SerialTransport
        )


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class TestDagExecutor:
    def test_map_preserves_order(self):
        with DagExecutor.from_spec("thread", max_workers=3) as executor:
            assert executor.map(_square, list(range(20))) == [
                n * n for n in range(20)
            ]

    def test_empty_batch(self):
        with DagExecutor(SerialTransport()) as executor:
            assert executor.map(_square, []) == []
            assert executor.stats.submitted == 0

    def test_stats_accounting(self):
        with DagExecutor.from_spec("thread", max_workers=2) as executor:
            executor.map(_square, list(range(10)), source="a")
            executor.map(_square, list(range(5)), source="a")
        stats = executor.stats
        assert stats.submitted == 15
        assert stats.tasks == 15
        assert sum(stats.per_worker.values()) == 15
        assert 1 <= len(stats.per_worker) <= 2
        assert stats.queue_high_water >= 10

    def test_steals_counted_on_source_switch(self):
        # One worker alternating between two sources: every switch is
        # a steal by definition — the worker picked up another cell's
        # leaf.  Serial batches from distinct sources force N-1
        # switches deterministically.
        with DagExecutor.from_spec("thread", max_workers=1) as executor:
            executor.map(_square, [1, 2], source="cell-a")
            executor.map(_square, [3, 4], source="cell-b")
            executor.map(_square, [5, 6], source="cell-a")
        stats = executor.stats
        assert stats.steals == 2
        assert stats.tasks == 6

    def test_map_stream_callback_in_caller_thread(self):
        import threading

        seen = []
        caller = threading.current_thread()

        def record(index, value):
            assert threading.current_thread() is caller
            seen.append((index, value))

        with DagExecutor.from_spec("thread", max_workers=2) as executor:
            results = executor.map_stream(_square, [1, 2, 3], callback=record)
        assert results == [1, 4, 9]
        assert sorted(seen) == [(0, 1), (1, 4), (2, 9)]

    def test_leaf_failure_propagates_and_pending_resets(self):
        def explode(value):
            if value == 3:
                raise ValueError("leaf boom")
            return value

        with DagExecutor.from_spec("thread", max_workers=1) as executor:
            with pytest.raises(ValueError, match="leaf boom"):
                executor.map(explode, [1, 2, 3, 4, 5])
            # The failed batch's pending count was unwound, so the
            # queue high-water of a later batch starts from zero.
            assert executor.map(_square, [2]) == [4]
        assert executor.stats.submitted == 6

    def test_stats_roundtrip_and_summary(self):
        stats = ExecutorStats(
            submitted=9,
            tasks=8,
            steals=2,
            queue_high_water=5,
            per_worker={"w1": 5, "w0": 3},
        )
        raw = stats.to_dict()
        assert raw["workers"] == 2
        assert list(raw["per_worker"]) == ["w0", "w1"]  # sorted for JSON
        assert ExecutorStats.from_dict(raw) == stats
        assert json.loads(json.dumps(raw)) == raw
        text = stats.summary()
        assert "8 tasks" in text and "2 steals" in text and "3-5" in text


# ---------------------------------------------------------------------------
# Ambient scope wiring
# ---------------------------------------------------------------------------


class TestAmbientScope:
    def test_dag_spec_degrades_to_serial_outside_scope(self):
        assert current_executor() is None
        assert isinstance(resolve_backend("dag"), SerialBackend)
        assert isinstance(ambient_backend(), SerialBackend)

    def test_dag_spec_binds_to_scoped_executor(self):
        with DagExecutor(SerialTransport()) as executor:
            with executor_scope(executor, "test-cell"):
                backend = resolve_backend("dag")
                assert isinstance(backend, SharedExecutorBackend)
                assert backend.executor is executor
                assert backend.source == "test-cell"
                assert backend.map(_square, [2, 3]) == [4, 9]
        assert current_executor() is None
        assert executor.stats.per_worker  # leaves actually went through

    def test_scopes_nest(self):
        outer = DagExecutor(SerialTransport())
        inner = DagExecutor(SerialTransport())
        with executor_scope(outer, "outer"):
            with executor_scope(inner, "inner"):
                assert current_executor() is inner
            assert current_executor() is outer

    def test_scope_is_thread_local(self):
        import threading

        observed = []
        with DagExecutor(SerialTransport()) as executor:
            with executor_scope(executor, "main"):
                thread = threading.Thread(
                    target=lambda: observed.append(current_executor())
                )
                thread.start()
                thread.join()
        assert observed == [None]

    def test_shared_backend_close_is_noop(self):
        # resolve_backend callers close backends they resolved; the
        # executor belongs to whoever opened the scope and must
        # survive its views being closed.
        with DagExecutor(SerialTransport()) as executor:
            backend = SharedExecutorBackend(executor)
            backend.close()
            assert backend.map(_square, [5]) == [25]


# ---------------------------------------------------------------------------
# The exec_plan profile field (deprecating the per-cut knobs)
# ---------------------------------------------------------------------------


class TestExecPlan:
    def test_default_is_percut(self):
        profile = ExperimentProfile.fast()
        assert profile.exec_plan is None
        assert not profile.uses_dag_executor()
        assert profile.sweep_backend() == "serial"
        assert profile.restart_dispatch_backend() == "serial"

    def test_dag_plan_routes_all_cuts(self):
        profile = ExperimentProfile.fast().with_exec_plan("dag:thread")
        assert profile.uses_dag_executor()
        assert profile.dag_transport() == "thread"
        assert profile.sweep_backend() == "dag"
        assert profile.restart_dispatch_backend() == "dag"
        assert profile.annealing_config().restart_backend == "dag"

    def test_bare_dag_defaults_to_auto_transport(self):
        assert ExperimentProfile.fast().with_exec_plan("dag").dag_transport() == "auto"

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown exec_plan"):
            ExperimentProfile.fast().with_exec_plan("threads")

    def test_dag_plan_conflicts_with_pooled_percut_knobs(self):
        base = ExperimentProfile.fast().with_backend(exec_backend="process")
        with pytest.raises(ValueError, match="conflicts with per-cut"):
            base.with_exec_plan("dag")
        with pytest.raises(ValueError, match="restart_backend"):
            ExperimentProfile.fast().with_backend(
                restart_backend="auto"
            ).with_exec_plan("dag:process")

    def test_serial_percut_knobs_are_compatible(self):
        # "serial" per-cut values are the defaults — inert, not a
        # second owner of the machine's parallelism.
        profile = ExperimentProfile.fast().with_exec_plan("dag")
        assert profile.exec_backend == "serial"

    def test_percut_plan_keeps_legacy_dispatch(self):
        profile = ExperimentProfile.fast().with_exec_plan("percut")
        assert not profile.uses_dag_executor()
        with pytest.raises(ValueError, match="not a dag plan"):
            profile.dag_transport()

    def test_fingerprint_excludes_exec_plan(self, tiny_profile):
        # A store written serially must resume under the DAG executor.
        assert (
            tiny_profile.with_exec_plan("dag:process").result_fingerprint()
            == tiny_profile.result_fingerprint()
        )

    def test_run_cells_rejects_backend_override_under_dag(self, tiny_profile):
        @dataclass(frozen=True)
        class Cell:
            profile: ExperimentProfile

            def run(self):  # pragma: no cover - never dispatched
                return None

        profile = tiny_profile.with_exec_plan("dag:serial")
        with pytest.raises(ValueError, match="conflicts with an explicit"):
            run_cells([Cell(profile)], profile, backend="thread")


# ---------------------------------------------------------------------------
# Optimizer-level parity: serial vs DAG, including evaluator counters
# ---------------------------------------------------------------------------


class TestOptimizerParity:
    def _graph(self):
        config = RandomGraphConfig(num_tasks=10)
        return random_task_graph(config, seed=3), config.deadline_s

    def _run(self, profile, graph, deadline_s, objective=None):
        if profile.uses_dag_executor():
            with DagExecutor.from_spec("thread", max_workers=3) as executor:
                with executor_scope(executor, "parity"):
                    outcome = build_optimizer(
                        graph, 3, deadline_s, profile, objective=objective
                    ).optimize()
                assert executor.stats.tasks > 0  # leaves really shipped
                return outcome
        return build_optimizer(
            graph, 3, deadline_s, profile, objective=objective
        ).optimize()

    def test_sea_flow_identical_with_exact_counters(self):
        # stop_after_feasible=None runs one full wave, so the DAG path
        # must reproduce not just the selected design but the *exact*
        # evaluator totals (restart-level leaves fold their counts
        # back precisely).
        graph, deadline_s = self._graph()
        profile = ExperimentProfile(
            name="parity",
            search_iterations=120,
            sa_iterations=200,
            stop_after_feasible=None,
            seed=0,
        )
        serial = self._run(profile, graph, deadline_s)
        dag = self._run(profile.with_exec_plan("dag:thread"), graph, deadline_s)
        assert serial.best == dag.best
        assert serial.assessments == dag.assessments
        assert serial.evaluations == dag.evaluations

    def test_baseline_flow_identical_with_exact_counters(self):
        from repro.optim import RegisterUsageObjective

        graph, deadline_s = self._graph()
        profile = ExperimentProfile(
            name="parity",
            search_iterations=120,
            sa_iterations=200,
            stop_after_feasible=None,
            seed=0,
        )
        objective = RegisterUsageObjective()
        serial = self._run(profile, graph, deadline_s, objective)
        dag = self._run(
            profile.with_exec_plan("dag:thread"), graph, deadline_s, objective
        )
        assert serial.best == dag.best
        assert serial.assessments == dag.assessments
        assert serial.evaluations == dag.evaluations

    def test_early_exit_replay_matches_serial(self):
        # With the early-exit policy active the wave tail may cost
        # extra (uncounted-in-report) evaluations, exactly like the
        # legacy parallel sweep — but the selected design and the
        # assessment list must still replay the serial decisions.
        graph, deadline_s = self._graph()
        profile = ExperimentProfile(
            name="parity",
            search_iterations=120,
            sa_iterations=200,
            stop_after_feasible=2,
            seed=0,
        )
        serial = self._run(profile, graph, deadline_s)
        dag = self._run(profile.with_exec_plan("dag:thread"), graph, deadline_s)
        assert serial.best == dag.best
        assert serial.assessments == dag.assessments


# ---------------------------------------------------------------------------
# Nested grids: byte-identical reports over real transports
# ---------------------------------------------------------------------------


class TestNestedGridDeterminism:
    @pytest.mark.parametrize("plan", ["dag:thread", "dag:process"])
    def test_table3_reports_byte_identical(self, tiny_profile, tiny_app, plan):
        graph, deadline_s = tiny_app
        applications = [("tiny", graph, deadline_s)]
        serial = run_table3(
            tiny_profile, core_counts=(2, 3), applications=applications
        )
        dag = run_table3(
            tiny_profile.with_exec_plan(plan),
            core_counts=(2, 3),
            applications=applications,
        )
        assert serial.format_table() == dag.format_table()
        assert serial.shape_checks() == dag.shape_checks()
        assert render_report("table3", serial, tiny_profile) == render_report(
            "table3", dag, tiny_profile
        )

    def test_randomized_grids_byte_identical(self, tiny_profile):
        # Several random grids (different sizes and seeds), serial vs
        # the shared executor with an oversubscribed thread transport:
        # every report byte-identical, per the house contract.
        for num_tasks, seed in ((8, 1), (10, 5)):
            config = RandomGraphConfig(num_tasks=num_tasks)
            graph = random_task_graph(config, seed=seed)
            applications = [(f"rand{num_tasks}", graph, config.deadline_s)]
            profile = replace(tiny_profile, seed=seed)
            serial = run_table3(
                profile, core_counts=(2, 3), applications=applications
            )
            dag = run_table3(
                profile.with_exec_plan("dag:thread").with_max_workers(4),
                core_counts=(2, 3),
                applications=applications,
            )
            assert serial.format_table() == dag.format_table()

    def test_run_all_subset_byte_identical(self, tiny_profile):
        ids = ("fig3", "table2")
        serial = run_all(tiny_profile, ids=ids)
        dag = run_all(tiny_profile.with_exec_plan("dag:thread"), ids=ids)
        assert list(serial) == list(dag)
        for experiment_id in ids:
            assert serial[experiment_id][1] == dag[experiment_id][1]


# ---------------------------------------------------------------------------
# Store integration: streaming, resume, executor stats in the manifest
# ---------------------------------------------------------------------------


class TestDagStoreIntegration:
    def test_stored_run_matches_and_records_stats(
        self, tiny_profile, tiny_app, tmp_path
    ):
        graph, deadline_s = tiny_app
        applications = [("tiny", graph, deadline_s)]
        serial = run_table3(
            tiny_profile, core_counts=(2, 3), applications=applications
        )
        stored_profile = tiny_profile.with_exec_plan("dag:thread").with_store(
            tmp_path
        )
        stored = run_table3(
            stored_profile, core_counts=(2, 3), applications=applications
        )
        assert serial.format_table() == stored.format_table()
        manifest = json.loads(
            (tmp_path / "table3" / "manifest.json").read_text()
        )
        assert manifest["run_status"] == "complete"
        executor = manifest["executor"]
        assert executor["tasks"] == executor["submitted"] > 0
        assert sum(executor["per_worker"].values()) == executor["tasks"]

    def test_serial_store_resumes_under_dag(
        self, tiny_profile, tiny_app, tmp_path
    ):
        # exec_plan is excluded from the resume identity: a grid
        # streamed serially resumes under the DAG executor and
        # reassembles the identical report without re-running cells.
        graph, deadline_s = tiny_app
        applications = [("tiny", graph, deadline_s)]
        serial = run_table3(
            tiny_profile.with_store(tmp_path),
            core_counts=(2, 3),
            applications=applications,
        )
        resumed = run_table3(
            tiny_profile.with_exec_plan("dag:thread").with_store(
                tmp_path, resume=True
            ),
            core_counts=(2, 3),
            applications=applications,
        )
        assert serial.format_table() == resumed.format_table()
        manifest = json.loads(
            (tmp_path / "table3" / "manifest.json").read_text()
        )
        # Nothing was pending, so the executor ran zero leaves.
        assert manifest["executor"]["tasks"] == 0


# ---------------------------------------------------------------------------
# Grid error semantics under the DAG path
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _BoomCell:
    profile: ExperimentProfile
    ok: bool

    def run(self):
        if not self.ok:
            raise ValueError("cell boom")
        return "fine"


class TestDagGridErrors:
    def test_storeless_failure_propagates_original_type(self, tiny_profile):
        profile = tiny_profile.with_exec_plan("dag:serial")
        cells = [_BoomCell(profile, True), _BoomCell(profile, False)]
        with pytest.raises(ValueError, match="cell boom"):
            run_cells(cells, profile, label="boom")

    def test_stored_failure_recorded_and_resumable(self, tiny_profile, tmp_path):
        profile = tiny_profile.with_exec_plan("dag:serial").with_store(tmp_path)
        cells = [_BoomCell(profile, True), _BoomCell(profile, False)]
        with pytest.raises(RuntimeError, match="1 of 2 cell"):
            run_cells(cells, profile, label="boom")
        manifest = json.loads((tmp_path / "boom" / "manifest.json").read_text())
        assert manifest["run_status"] == "failed"
        assert manifest["completed"] == 1
        # Resume re-dispatches only the failure (still failing here).
        resume_profile = replace(profile, resume=True)
        with pytest.raises(RuntimeError, match="1 of 2 cell"):
            run_cells(cells, resume_profile, label="boom")


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------


class TestCliExecPlan:
    def test_exec_plan_lands_on_profile(self):
        from repro.cli import _profile_from, build_parser

        args = build_parser().parse_args(
            ["experiment", "fig3", "--exec-plan", "dag:thread"]
        )
        profile = _profile_from(args)
        assert profile.exec_plan == "dag:thread"
        assert profile.uses_dag_executor()

    def test_exec_plan_choices_match_profile_constants(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "fig3", "--exec-plan", "threads"]
            )
        assert "percut" in EXEC_PLANS

    def test_conflicting_percut_flags_fail_fast(self):
        from repro.cli import _profile_from, build_parser

        args = build_parser().parse_args(
            [
                "experiment",
                "fig3",
                "--exec-plan",
                "dag",
                "--backend",
                "process",
            ]
        )
        with pytest.raises(SystemExit, match="conflicts with the deprecated"):
            _profile_from(args)

    def test_runs_subcommand_prints_executor_stats(self, tmp_path, capsys):
        from repro.cli import main
        from repro.store import RunStore

        store = RunStore.open(
            tmp_path / "grid", label="grid", fingerprint="f" * 16, keys=["000:c"]
        )
        store.record_result("000:c", 0, "x")
        store.set_executor_stats(
            {
                "submitted": 4,
                "tasks": 4,
                "steals": 1,
                "queue_high_water": 3,
                "workers": 2,
                "per_worker": {"w0": 3, "w1": 1},
            }
        )
        store.finalize()
        assert main(["runs", "--store-dir", str(tmp_path), "--run", "grid"]) == 0
        out = capsys.readouterr().out
        assert "executor: 4 tasks over 2 worker(s)" in out
        assert "1 steals" in out
        assert "w0: 3 task(s)" in out
