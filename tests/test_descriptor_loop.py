"""Descriptor inner-loop determinism: bit-identical to the Mapping walk.

The contract under test (ISSUE 5 / ARCHITECTURE "Search inner loop"):
with the same seed, the descriptor-based ``run()`` of both searchers
reproduces the Mapping-based ``run_reference()`` exactly — accepted
points, RNG consumption, evaluation counts and cache hit/miss
counters — on serial and process restart backends, screened and
unscreened, across randomized graphs.  Plus unit coverage for the
:class:`MoveSampler` (RNG parity, Fenwick partner selection,
occupancy tracking) and the inner-loop stats instrumentation.
"""

import random

import pytest

from repro.arch import MPSoC
from repro.mapping import Mapping, MappingEvaluator
from repro.optim import (
    AnnealingConfig,
    InnerLoopStats,
    MakespanObjective,
    Move,
    MoveSampler,
    OptimizedMappingSearch,
    RegisterUsageObjective,
    SEUObjective,
    SimulatedAnnealingMapper,
    Swap,
    random_neighbor,
)
from repro.optim.initial_mapping import initial_sea_mapping
from repro.taskgraph import RandomGraphConfig, mpeg2_decoder, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


@pytest.fixture(scope="module")
def mpeg2():
    return mpeg2_decoder()


def _assert_same_point(first, second):
    assert first.mapping == second.mapping
    assert first.scaling == second.scaling
    assert first.power_mw == second.power_mw
    assert first.expected_seus == second.expected_seus
    assert first.makespan_s == second.makespan_s
    # Rendered artifacts (table2, CLI) list per-core tasks in the
    # mapping's insertion order; both loops must agree byte for byte.
    assert first.mapping.core_groups() == second.mapping.core_groups()


def _apply_descriptor(mapping, names, descriptor):
    if isinstance(descriptor, Move):
        return mapping.move(names[descriptor.task], descriptor.core)
    return mapping.swap(names[descriptor.task_a], names[descriptor.task_b])


class TestMoveSamplerParity:
    """draw() consumes the identical RNG stream as random_neighbor."""

    def test_draw_matches_random_neighbor_over_random_walks(self):
        for trial in range(25):
            seeder = random.Random(trial)
            if trial % 4 == 0:
                graph = mpeg2_decoder()
            else:
                graph = random_task_graph(
                    RandomGraphConfig(num_tasks=seeder.randrange(2, 36)),
                    seed=trial,
                )
            names = graph.task_names()
            num_cores = seeder.randrange(1, 6)
            mapping = Mapping(
                {name: seeder.randrange(num_cores) for name in names}, num_cores
            )
            compiled = graph.compiled()
            sampler = MoveSampler(compiled, compiled.signature(mapping), num_cores)
            rng_ref = random.Random(500 + trial)
            rng_desc = random.Random(500 + trial)
            focus = None
            for step in range(120):
                reference = random_neighbor(
                    mapping,
                    graph,
                    rng_ref,
                    focus_task=None if focus is None else names[focus],
                )
                descriptor = sampler.draw(rng_desc, focus=focus)
                if descriptor is None:
                    assert reference == mapping
                else:
                    derived = _apply_descriptor(mapping, names, descriptor)
                    assert derived == reference, (trial, step)
                    assert sampler.used_cores_after(descriptor) == len(
                        derived.used_cores()
                    )
                assert rng_ref.getstate() == rng_desc.getstate()
                if descriptor is not None and seeder.random() < 0.5:
                    sampler.apply(descriptor)
                    mapping = reference
                    focus = (
                        sampler.first_moved(descriptor) if step % 3 else None
                    )
                    assert sampler.used_cores == len(mapping.used_cores())
                    assert sampler.cores == [
                        mapping.core_of(name) for name in names
                    ]

    def test_degenerate_graphs_draw_nothing(self, mpeg2):
        compiled = mpeg2.compiled()
        single_core = MoveSampler(compiled, [0] * compiled.num_tasks, 1)
        rng = random.Random(0)
        state_before = rng.getstate()
        assert single_core.draw(rng) is None
        assert rng.getstate() == state_before  # no RNG consumed

    def test_rebuild_rejects_wrong_length(self, mpeg2):
        compiled = mpeg2.compiled()
        with pytest.raises(ValueError, match="covers"):
            MoveSampler(compiled, [0, 1], 4)

    def test_fenwick_partner_selection_is_exact(self):
        # _select_absent(core, k) must equal the k-th task not on
        # `core` in index order, for every (core, k).
        graph = random_task_graph(RandomGraphConfig(num_tasks=23), seed=5)
        compiled = graph.compiled()
        rng = random.Random(9)
        cores = [rng.randrange(4) for _ in range(compiled.num_tasks)]
        sampler = MoveSampler(compiled, cores, 4)
        for core in range(4):
            pool = [i for i, c in enumerate(cores) if c != core]
            for k, expected in enumerate(pool):
                assert sampler._select_absent(core, k) == expected


def _annealer(graph, num_cores, deadline, objective, seed, **kwargs):
    evaluator = MappingEvaluator(
        graph, MPSoC.paper_reference(num_cores), deadline_s=deadline
    )
    defaults = dict(
        config=AnnealingConfig(max_iterations=300, restarts=2),
        seed=seed,
        require_all_cores=True,
    )
    defaults.update(kwargs)
    return SimulatedAnnealingMapper(evaluator, objective, **defaults)


class TestAnnealerDescriptorParity:
    """run() == run_reference(): points, counters, cache traffic."""

    @pytest.mark.parametrize("screening", [False, True])
    @pytest.mark.parametrize(
        "objective", [SEUObjective(), RegisterUsageObjective(), MakespanObjective()]
    )
    def test_mpeg2_parity(self, mpeg2, screening, objective):
        results = []
        for reference in (False, True):
            mapper = _annealer(
                mpeg2,
                4,
                MPEG2_DEADLINE_S,
                objective,
                seed=7,
                screening=screening,
                screen_threshold=0.5,
            )
            runner = mapper.run_reference if reference else mapper.run
            point = runner(Mapping.round_robin(mpeg2, 4), (2, 2, 3, 2))
            evaluator = mapper.evaluator
            results.append(
                (
                    point,
                    evaluator.evaluations,
                    evaluator.cache_hits,
                    evaluator.cache_misses,
                    mapper.screened_moves,
                    mapper.screened_moves_per_restart,
                    mapper.restart_evaluations,
                )
            )
        _assert_same_point(results[0][0], results[1][0])
        assert results[0][1:] == results[1][1:]

    def test_randomized_graphs_parity(self):
        for trial in range(6):
            seeder = random.Random(trial)
            num_tasks = seeder.randrange(8, 40)
            graph = random_task_graph(
                RandomGraphConfig(num_tasks=num_tasks), seed=trial
            )
            num_cores = seeder.randrange(2, 7)
            scaling = tuple(seeder.randrange(1, 4) for _ in range(num_cores))
            deadline = RandomGraphConfig(num_tasks=num_tasks).deadline_s
            points = []
            for reference in (False, True):
                mapper = _annealer(
                    graph,
                    num_cores,
                    deadline,
                    SEUObjective(),
                    seed=trial,
                    screening=trial % 2 == 0,
                    require_all_cores=trial % 3 != 0,
                    config=AnnealingConfig(max_iterations=250, restarts=1),
                )
                runner = mapper.run_reference if reference else mapper.run
                points.append(runner(Mapping.round_robin(graph, num_cores), scaling))
            _assert_same_point(points[0], points[1])

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_restart_backend_parity(self, mpeg2, backend):
        # The descriptor loop inside restart jobs (serial ranking
        # replay) must still select the reference loop's design.
        initial = Mapping.round_robin(mpeg2, 4)
        parallel = _annealer(
            mpeg2,
            4,
            MPEG2_DEADLINE_S,
            SEUObjective(),
            seed=3,
            config=AnnealingConfig(max_iterations=200, restarts=3),
            backend=backend,
        )
        serial_reference = _annealer(
            mpeg2,
            4,
            MPEG2_DEADLINE_S,
            SEUObjective(),
            seed=3,
            config=AnnealingConfig(max_iterations=200, restarts=3),
        )
        _assert_same_point(
            parallel.run(initial, (2, 2, 3, 2)),
            serial_reference.run_reference(initial, (2, 2, 3, 2)),
        )
        assert (
            parallel.restart_evaluations == serial_reference.restart_evaluations
        )
        assert len(parallel.inner_stats_per_restart) == 3

    def test_deadline_unaware_mode_parity(self, mpeg2):
        # The Exp:1-3 baseline mode (deadline_penalty=False) is the
        # screening-heavy regime; parity must hold there too.
        points = []
        for reference in (False, True):
            mapper = _annealer(
                mpeg2,
                4,
                MPEG2_DEADLINE_S,
                RegisterUsageObjective(),
                seed=1,
                deadline_penalty=False,
                screening=True,
                screen_threshold=0.5,
                config=AnnealingConfig(
                    max_iterations=400, restarts=1, initial_temperature=0.01
                ),
            )
            runner = mapper.run_reference if reference else mapper.run
            points.append(runner(Mapping.round_robin(mpeg2, 4), (2, 2, 2, 2)))
        _assert_same_point(points[0], points[1])


class TestWalkDescriptorParity:
    """OptimizedMappingSearch run() == run_reference()."""

    @pytest.mark.parametrize("screen", [False, True])
    def test_mpeg2_parity(self, mpeg2, screen):
        platform = MPSoC.paper_reference(4)
        initial = initial_sea_mapping(
            mpeg2, platform, deadline_s=MPEG2_DEADLINE_S, scaling=(2, 2, 2, 2)
        )
        results, counters = [], []
        for reference in (False, True):
            evaluator = MappingEvaluator(
                mpeg2, platform, deadline_s=MPEG2_DEADLINE_S
            )
            search = OptimizedMappingSearch(
                evaluator,
                max_iterations=400,
                seed=11,
                screen_moves=screen,
                record_history=True,
            )
            runner = search.run_reference if reference else search.run
            results.append(runner(initial, (2, 2, 2, 2)))
            counters.append(
                (
                    evaluator.evaluations,
                    evaluator.cache_hits,
                    evaluator.cache_misses,
                    search.screened_moves,
                )
            )
        first, second = results
        _assert_same_point(first.best, second.best)
        assert (first.iterations, first.improvements, first.feasible) == (
            second.iterations,
            second.improvements,
            second.feasible,
        )
        assert first.history == second.history
        assert first.screened_moves == second.screened_moves
        assert counters[0] == counters[1]

    def test_intensification_and_focus_parity(self):
        # A small intensify_every forces tracker/sampler rebuilds and
        # exercises the focus-bias candidate ordering.
        graph = random_task_graph(RandomGraphConfig(num_tasks=30), seed=14)
        platform = MPSoC.paper_reference(5)
        deadline = RandomGraphConfig(num_tasks=30).deadline_s
        results = []
        for reference in (False, True):
            evaluator = MappingEvaluator(graph, platform, deadline_s=deadline)
            search = OptimizedMappingSearch(
                evaluator,
                max_iterations=300,
                seed=2,
                intensify_every=40,
                walk_probability=0.3,
            )
            runner = search.run_reference if reference else search.run
            results.append(runner(Mapping.round_robin(graph, 5), (2,) * 5))
        _assert_same_point(results[0].best, results[1].best)
        assert results[0].iterations == results[1].iterations
        assert results[0].improvements == results[1].improvements


class TestInnerLoopStats:
    def test_annealer_stats_populated_and_reset(self, mpeg2):
        mapper = _annealer(
            mpeg2,
            4,
            MPEG2_DEADLINE_S,
            SEUObjective(),
            seed=0,
            screening=True,
            screen_threshold=0.5,
            config=AnnealingConfig(max_iterations=200, restarts=2),
        )
        initial = Mapping.round_robin(mpeg2, 4)
        mapper.run(initial, (2, 2, 3, 2))
        stats = mapper.inner_stats
        assert stats.moves_drawn > 0
        assert stats.previews > 0
        assert stats.materialized_mappings > 0
        assert stats.screened_moves == mapper.screened_moves
        assert len(mapper.inner_stats_per_restart) == 2
        folded = InnerLoopStats()
        for per_restart in mapper.inner_stats_per_restart:
            folded.merge(per_restart)
        assert folded == stats
        # Reruns must not inherit the first run's counts: the RNG
        # walk repeats (same draws/screens) but the warm cache means
        # no neighbour misses — materializations drop to zero instead
        # of doubling.
        first = stats
        mapper.run(initial, (2, 2, 3, 2))
        assert mapper.inner_stats is not first
        assert mapper.inner_stats.moves_drawn == first.moves_drawn
        assert mapper.inner_stats.screened_moves == first.screened_moves
        assert mapper.inner_stats.materialized_mappings == 0

    def test_materializations_bounded_by_misses(self, mpeg2):
        mapper = _annealer(
            mpeg2,
            4,
            MPEG2_DEADLINE_S,
            SEUObjective(),
            seed=4,
            config=AnnealingConfig(max_iterations=250, restarts=1),
        )
        mapper.run(Mapping.round_robin(mpeg2, 4), (2, 2, 3, 2))
        stats = mapper.inner_stats
        # Every neighbour materialization is a cache miss; the initial
        # evaluation's miss is not a neighbour materialization.
        assert stats.materialized_mappings < mapper.evaluator.cache_misses + 1
        assert stats.moves_drawn >= stats.materialized_mappings

    def test_walk_stats_on_result(self, mpeg2):
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(mpeg2, platform, deadline_s=MPEG2_DEADLINE_S)
        search = OptimizedMappingSearch(
            evaluator, max_iterations=200, seed=3, intensify_every=30
        )
        result = search.run(Mapping.round_robin(mpeg2, 4), (2, 2, 2, 2))
        assert result.inner_stats is search.inner_stats
        assert result.inner_stats.moves_drawn > 0
        assert result.inner_stats.materialized_mappings > 0

    def test_reference_loops_report_zero_stats(self, mpeg2):
        mapper = _annealer(
            mpeg2,
            4,
            MPEG2_DEADLINE_S,
            SEUObjective(),
            seed=0,
            config=AnnealingConfig(max_iterations=100, restarts=1),
        )
        mapper.run_reference(Mapping.round_robin(mpeg2, 4), (2, 2, 3, 2))
        assert mapper.inner_stats == InnerLoopStats()


class TestDescriptorTypes:
    def test_descriptors_are_frozen_values(self):
        move = Move(task=3, core=1)
        swap = Swap(task_a=2, task_b=5)
        assert move == Move(3, 1)
        assert swap == Swap(2, 5)
        with pytest.raises(AttributeError):
            move.core = 2
