"""Additional DesignOptimizer behaviours: custom sweeps, power-parity
selection, and the runner's full dispatch table."""

import pytest

from repro.arch import MPSoC
from repro.experiments.runner import _RUNNERS, run_all
from repro.optim import DesignOptimizer, sea_mapper
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


@pytest.fixture(scope="module")
def outcome_and_optimizer():
    optimizer = DesignOptimizer(
        mpeg2_decoder(),
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
        mapper=sea_mapper(search_iterations=200),
        stop_after_feasible=None,
        seed=0,
    )
    # A restricted, hand-picked sweep keeps this module fast.
    outcome = optimizer.optimize(
        scalings=[(3, 3, 3, 3), (3, 3, 2, 2), (2, 2, 2, 2), (1, 1, 1, 1)]
    )
    return optimizer, outcome


class TestCustomSweep:
    def test_assesses_exactly_given_scalings(self, outcome_and_optimizer):
        _, outcome = outcome_and_optimizer
        assessed = [record.scaling for record in outcome.assessments]
        assert assessed == [(3, 3, 3, 3), (3, 3, 2, 2), (2, 2, 2, 2), (1, 1, 1, 1)]

    def test_best_from_feasible_subset(self, outcome_and_optimizer):
        _, outcome = outcome_and_optimizer
        assert outcome.best is not None
        assert outcome.best.scaling in {
            record.scaling for record in outcome.assessments if record.feasible
        }


class TestBestWithinPower:
    def test_respects_budget(self, outcome_and_optimizer):
        _, outcome = outcome_and_optimizer
        budget = outcome.best.power_mw
        matched = outcome.best_within_power(budget, tolerance=0.05)
        assert matched is not None
        assert matched.power_mw <= budget * 1.05 + 1e-9

    def test_minimizes_seus_within_budget(self, outcome_and_optimizer):
        _, outcome = outcome_and_optimizer
        budget = max(point.power_mw for point in outcome.feasible_points)
        matched = outcome.best_within_power(budget, tolerance=0.0)
        assert matched.expected_seus == min(
            point.expected_seus for point in outcome.feasible_points
        )

    def test_returns_none_when_unaffordable(self, outcome_and_optimizer):
        _, outcome = outcome_and_optimizer
        assert outcome.best_within_power(1e-9) is None


class TestPowerProxyAgreement:
    def test_proxy_correlates_with_measured_power(self, outcome_and_optimizer):
        optimizer, outcome = outcome_and_optimizer
        # For the uniform scalings in the sweep, proxy order and
        # measured-power order agree.
        uniform = [
            record
            for record in outcome.assessments
            if len(set(record.scaling)) == 1
        ]
        proxies = [optimizer.power_proxy(record.scaling) for record in uniform]
        powers = [record.point.power_mw for record in uniform]
        assert sorted(range(len(uniform)), key=lambda i: proxies[i]) == sorted(
            range(len(uniform)), key=lambda i: powers[i]
        )


class TestRunnerTable:
    def test_all_experiments_registered(self):
        assert set(_RUNNERS) == {
            "fig3",
            "table2",
            "fig9",
            "table3",
            "fig10",
            "fig11",
            "hetero",
        }

    def test_run_all_signature(self):
        # run_all wires every id through run_experiment; verify the
        # contract without paying for a full run by checking callables.
        assert callable(run_all)
        for runner in _RUNNERS.values():
            assert callable(runner)
