"""The batch evaluation API: exact parity with per-call evaluate().

``evaluate_batch`` is the vectorized (numpy) path since the batched
scheduler landed; ``evaluate_batch_reference`` keeps the per-mapping
loop.  Every test here asserts exact — bitwise — agreement between the
two and with per-call ``evaluate``, including cache contents, LRU
order and the evaluations/hit/miss counters.  The randomized section
runs in CI with ``REPRO_VALIDATE_SCHEDULES=1`` armed as well.
"""

import random

import pytest

from repro.arch import MPSoC
from repro.mapping import Mapping, MappingEvaluator
from repro.mapping.enumeration import stratified_mappings
from repro.taskgraph import RandomGraphConfig, mpeg2_decoder, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S

SCALING = (2, 2, 3, 2)


@pytest.fixture(scope="module")
def mpeg2():
    return mpeg2_decoder()


def _evaluator(mpeg2, **kwargs):
    return MappingEvaluator(
        mpeg2, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S, **kwargs
    )


def _sample(mpeg2, count=25):
    return stratified_mappings(mpeg2, 4, count, seed=0)


class TestEvaluateBatch:
    def test_matches_per_call_evaluate(self, mpeg2):
        mappings = _sample(mpeg2)
        batch_evaluator = _evaluator(mpeg2)
        single_evaluator = _evaluator(mpeg2)
        batch = batch_evaluator.evaluate_batch(mappings, SCALING)
        singles = [single_evaluator.evaluate(m, SCALING) for m in mappings]
        assert len(batch) == len(singles)
        for batched, single in zip(batch, singles):
            assert batched == single

    def test_cache_counters_match_per_call(self, mpeg2):
        # Duplicates inside the batch must hit the cache exactly as a
        # per-call loop would, and the counters must agree.
        mappings = _sample(mpeg2)
        mixed = mappings + mappings[:7] + [mappings[0]]
        batch_evaluator = _evaluator(mpeg2)
        single_evaluator = _evaluator(mpeg2)
        batch_evaluator.evaluate_batch(mixed, SCALING)
        for mapping in mixed:
            single_evaluator.evaluate(mapping, SCALING)
        assert batch_evaluator.cache_info == single_evaluator.cache_info
        assert batch_evaluator.evaluations == single_evaluator.evaluations
        assert batch_evaluator.cache_hits == 8

    def test_batch_seeds_cache_for_evaluate(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        mappings = _sample(mpeg2, count=5)
        evaluator.evaluate_batch(mappings, SCALING)
        misses = evaluator.cache_misses
        evaluator.evaluate(mappings[0], SCALING)
        assert evaluator.cache_misses == misses  # pure hit

    def test_cache_disabled(self, mpeg2):
        evaluator = _evaluator(mpeg2, cache_size=0)
        mappings = _sample(mpeg2, count=4)
        points = evaluator.evaluate_batch(mappings + mappings, SCALING)
        assert len(points) == 8
        assert evaluator.cache_hits == 0
        assert evaluator.cache_misses == 8

    def test_empty_batch(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        assert evaluator.evaluate_batch([], SCALING) == []
        assert evaluator.evaluations == 0

    def test_default_scaling(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        mapping = Mapping.round_robin(mpeg2, 4)
        batched = evaluator.evaluate_batch([mapping])[0]
        assert batched == evaluator.evaluate(mapping)
        assert evaluator.cache_hits == 1

    def test_rejects_bad_scaling_width(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        with pytest.raises(ValueError, match="entries"):
            evaluator.evaluate_batch([Mapping.round_robin(mpeg2, 4)], (1, 1))

    def test_matches_reference_path(self, mpeg2):
        # The batch path is still the compiled evaluation; spot-check
        # one point against the seed implementation.
        evaluator = _evaluator(mpeg2)
        mapping = Mapping.round_robin(mpeg2, 4)
        batched = evaluator.evaluate_batch([mapping], SCALING)[0]
        reference = evaluator.evaluate_reference(mapping, SCALING)
        assert batched.power_mw == reference.power_mw
        assert batched.expected_seus == reference.expected_seus
        assert batched.makespan_s == reference.makespan_s
        assert batched.register_bits_per_core == reference.register_bits_per_core


class TestVectorizedVsLoop:
    """The vectorized path vs the PR 2 loop path, field for field."""

    def test_matches_loop_path_bitwise(self, mpeg2):
        mappings = _sample(mpeg2, count=40)
        vec_evaluator = _evaluator(mpeg2)
        loop_evaluator = _evaluator(mpeg2)
        vectorized = vec_evaluator.evaluate_batch(mappings, SCALING)
        loop = loop_evaluator.evaluate_batch_reference(mappings, SCALING)
        for fast, slow in zip(vectorized, loop):
            assert fast == slow  # compares every metric field exactly
            assert fast.activities == slow.activities
            assert fast.execution_cycles_per_core == slow.execution_cycles_per_core
            assert fast.makespan_cycles == slow.makespan_cycles
        assert vec_evaluator.cache_info == loop_evaluator.cache_info
        assert vec_evaluator.evaluations == loop_evaluator.evaluations

    def test_loop_path_still_matches_per_call(self, mpeg2):
        mappings = _sample(mpeg2, count=10)
        loop_evaluator = _evaluator(mpeg2)
        single_evaluator = _evaluator(mpeg2)
        loop = loop_evaluator.evaluate_batch_reference(mappings, SCALING)
        singles = [single_evaluator.evaluate(m, SCALING) for m in mappings]
        assert loop == singles
        assert loop_evaluator.cache_info == single_evaluator.cache_info

    def test_tiny_cache_lru_parity(self, mpeg2):
        # Evictions mid-batch (cache smaller than the batch) must
        # leave the identical cache keys in the identical LRU order.
        mappings = _sample(mpeg2, count=9)
        mixed = mappings + mappings[:4] + mappings[::-1]
        batch_evaluator = _evaluator(mpeg2, cache_size=3)
        single_evaluator = _evaluator(mpeg2, cache_size=3)
        batch = batch_evaluator.evaluate_batch(mixed, SCALING)
        singles = [single_evaluator.evaluate(m, SCALING) for m in mixed]
        assert batch == singles
        assert batch_evaluator.cache_info == single_evaluator.cache_info
        assert list(batch_evaluator._cache.keys()) == list(
            single_evaluator._cache.keys()
        )

    def test_comm_model_parity(self, mpeg2):
        mappings = _sample(mpeg2, count=12)
        for comm_model in ("dedicated", "shared-bus"):
            vec = MappingEvaluator(
                mpeg2,
                MPSoC.paper_reference(4),
                deadline_s=MPEG2_DEADLINE_S,
                comm_model=comm_model,
            )
            single = MappingEvaluator(
                mpeg2,
                MPSoC.paper_reference(4),
                deadline_s=MPEG2_DEADLINE_S,
                comm_model=comm_model,
            )
            assert vec.evaluate_batch(mappings, SCALING) == [
                single.evaluate(m, SCALING) for m in mappings
            ]

    def test_error_leaves_no_placeholder_behind(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        good = _sample(mpeg2, count=3)
        bad = Mapping.round_robin(mpeg2, 3)  # wrong platform width
        with pytest.raises(ValueError, match="scheduler"):
            evaluator.evaluate_batch(good + [bad], SCALING)
        # The cache must only ever hand out real design points.
        point = evaluator.evaluate(good[0], SCALING)
        assert point.makespan_s > 0


class TestSchedules:
    def test_schedules_skipped_by_default(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        points = evaluator.evaluate_batch(_sample(mpeg2, count=3), SCALING)
        assert all(point.schedule is None for point in points)

    def test_evaluate_rehydrates_batch_seeded_hits(self, mpeg2):
        # evaluate()'s full-schedule guarantee survives batch seeding:
        # a cache hit on a schedule-less point attaches the schedule
        # without disturbing metrics or counters.
        evaluator = _evaluator(mpeg2)
        mappings = _sample(mpeg2, count=4)
        evaluator.evaluate_batch(mappings, SCALING)
        misses = evaluator.cache_misses
        point = evaluator.evaluate(mappings[0], SCALING)
        assert evaluator.cache_misses == misses  # still a pure hit
        assert point.schedule is not None
        point.schedule.verify(mpeg2, mappings[0])
        reference = _evaluator(mpeg2).evaluate(mappings[0], SCALING)
        assert point == reference
        assert point.schedule.to_rows() == reference.schedule.to_rows()
        # The rehydrated point replaces the cached one in place.
        assert evaluator.evaluate(mappings[0], SCALING).schedule is not None

    def test_include_schedules_matches_serial(self, mpeg2):
        mappings = _sample(mpeg2, count=6)
        batch_evaluator = _evaluator(mpeg2)
        single_evaluator = _evaluator(mpeg2)
        batch = batch_evaluator.evaluate_batch(
            mappings, SCALING, include_schedules=True
        )
        for point, mapping in zip(batch, mappings):
            serial = single_evaluator.evaluate(mapping, SCALING)
            assert point.schedule is not None
            assert point.schedule.to_rows() == serial.schedule.to_rows()
            point.schedule.verify(mpeg2, mapping)


class TestRandomizedScalings:
    """Randomized mappings across scalings, incl. 0/1-sized batches.

    This is the suite CI re-runs with ``REPRO_VALIDATE_SCHEDULES=1``:
    the include_schedules pass then routes every batched row through
    the from_arrays validation checks.
    """

    @pytest.mark.parametrize("num_tasks,num_cores", [(15, 3), (40, 5)])
    def test_random_parity_across_scalings(self, num_tasks, num_cores):
        graph = random_task_graph(
            RandomGraphConfig(num_tasks=num_tasks), seed=num_tasks
        )
        deadline = RandomGraphConfig(num_tasks=num_tasks).deadline_s
        rng = random.Random(num_tasks)
        names = graph.task_names()
        scalings = [
            (1,) * num_cores,
            (3,) * num_cores,
            tuple(rng.choice((1, 2, 3)) for _ in range(num_cores)),
        ]
        for scaling in scalings:
            for batch_size in (0, 1, 7):
                mappings = [
                    Mapping(
                        {name: rng.randrange(num_cores) for name in names},
                        num_cores,
                    )
                    for _ in range(batch_size)
                ]
                vec = MappingEvaluator(
                    graph, MPSoC.paper_reference(num_cores), deadline_s=deadline
                )
                single = MappingEvaluator(
                    graph, MPSoC.paper_reference(num_cores), deadline_s=deadline
                )
                batch = vec.evaluate_batch(
                    mappings, scaling, include_schedules=True
                )
                singles = [single.evaluate(m, scaling) for m in mappings]
                assert batch == singles
                assert vec.cache_info == single.cache_info
                for fast, slow in zip(batch, singles):
                    assert fast.schedule.to_rows() == slow.schedule.to_rows()
