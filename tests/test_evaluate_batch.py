"""The batch evaluation API: exact parity with per-call evaluate()."""

import pytest

from repro.arch import MPSoC
from repro.mapping import Mapping, MappingEvaluator
from repro.mapping.enumeration import stratified_mappings
from repro.taskgraph import mpeg2_decoder
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S

SCALING = (2, 2, 3, 2)


@pytest.fixture(scope="module")
def mpeg2():
    return mpeg2_decoder()


def _evaluator(mpeg2, **kwargs):
    return MappingEvaluator(
        mpeg2, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S, **kwargs
    )


def _sample(mpeg2, count=25):
    return stratified_mappings(mpeg2, 4, count, seed=0)


class TestEvaluateBatch:
    def test_matches_per_call_evaluate(self, mpeg2):
        mappings = _sample(mpeg2)
        batch_evaluator = _evaluator(mpeg2)
        single_evaluator = _evaluator(mpeg2)
        batch = batch_evaluator.evaluate_batch(mappings, SCALING)
        singles = [single_evaluator.evaluate(m, SCALING) for m in mappings]
        assert len(batch) == len(singles)
        for batched, single in zip(batch, singles):
            assert batched == single

    def test_cache_counters_match_per_call(self, mpeg2):
        # Duplicates inside the batch must hit the cache exactly as a
        # per-call loop would, and the counters must agree.
        mappings = _sample(mpeg2)
        mixed = mappings + mappings[:7] + [mappings[0]]
        batch_evaluator = _evaluator(mpeg2)
        single_evaluator = _evaluator(mpeg2)
        batch_evaluator.evaluate_batch(mixed, SCALING)
        for mapping in mixed:
            single_evaluator.evaluate(mapping, SCALING)
        assert batch_evaluator.cache_info == single_evaluator.cache_info
        assert batch_evaluator.evaluations == single_evaluator.evaluations
        assert batch_evaluator.cache_hits == 8

    def test_batch_seeds_cache_for_evaluate(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        mappings = _sample(mpeg2, count=5)
        evaluator.evaluate_batch(mappings, SCALING)
        misses = evaluator.cache_misses
        evaluator.evaluate(mappings[0], SCALING)
        assert evaluator.cache_misses == misses  # pure hit

    def test_cache_disabled(self, mpeg2):
        evaluator = _evaluator(mpeg2, cache_size=0)
        mappings = _sample(mpeg2, count=4)
        points = evaluator.evaluate_batch(mappings + mappings, SCALING)
        assert len(points) == 8
        assert evaluator.cache_hits == 0
        assert evaluator.cache_misses == 8

    def test_empty_batch(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        assert evaluator.evaluate_batch([], SCALING) == []
        assert evaluator.evaluations == 0

    def test_default_scaling(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        mapping = Mapping.round_robin(mpeg2, 4)
        batched = evaluator.evaluate_batch([mapping])[0]
        assert batched == evaluator.evaluate(mapping)
        assert evaluator.cache_hits == 1

    def test_rejects_bad_scaling_width(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        with pytest.raises(ValueError, match="entries"):
            evaluator.evaluate_batch([Mapping.round_robin(mpeg2, 4)], (1, 1))

    def test_matches_reference_path(self, mpeg2):
        # The batch path is still the compiled evaluation; spot-check
        # one point against the seed implementation.
        evaluator = _evaluator(mpeg2)
        mapping = Mapping.round_robin(mpeg2, 4)
        batched = evaluator.evaluate_batch([mapping], SCALING)[0]
        reference = evaluator.evaluate_reference(mapping, SCALING)
        assert batched.power_mw == reference.power_mw
        assert batched.expected_seus == reference.expected_seus
        assert batched.makespan_s == reference.makespan_s
        assert batched.register_bits_per_core == reference.register_bits_per_core
