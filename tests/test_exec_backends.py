"""Execution backends and the parallel design-sweep determinism contract."""

import os
import pickle
import time
from pathlib import Path

import pytest

from repro.exec import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    payload_picklable,
    resolve_backend,
)
from repro.arch import MPSoC
from repro.experiments import ExperimentProfile
from repro.optim import (
    DesignOptimizer,
    RegisterUsageObjective,
    baseline_mapper,
    sea_mapper,
)
from repro.taskgraph import mpeg2_decoder
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S

# This module deliberately exercises the deprecated per-cut pools —
# they remain the legacy-parity reference paths.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _square(value):
    return value * value


class TestBackends:
    @pytest.mark.parametrize(
        "backend", [SerialBackend(), ThreadBackend(max_workers=2)]
    )
    def test_map_preserves_order(self, backend):
        with backend:
            assert backend.map(_square, list(range(20))) == [
                value * value for value in range(20)
            ]

    def test_process_map_preserves_order(self):
        with ProcessBackend(max_workers=2) as backend:
            assert backend.map(_square, list(range(8))) == [
                value * value for value in range(8)
            ]

    def test_empty_and_single_item(self):
        with ThreadBackend() as backend:
            assert backend.map(_square, []) == []
            assert backend.map(_square, [3]) == [9]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ThreadBackend(max_workers=0)

    def test_pool_not_sized_by_first_batch(self):
        # Regression: a small first map() must not throttle later,
        # larger batches for the lifetime of the pool.
        with ThreadBackend(max_workers=4) as backend:
            backend.map(_square, [1, 2])
            assert backend._executor._max_workers == 4
            backend.map(_square, list(range(16)))
            assert backend._executor._max_workers == 4


def _mark_and_sleep(payload):
    """Touch a per-item marker file, then linger briefly (worker food)."""
    directory, name = payload
    (Path(directory) / name).touch()
    time.sleep(0.05)
    return name


class TestMapStreamCancellation:
    """A raising callback must not leak queued work into the pool.

    Regression for the streaming store path: when persisting cell k
    fails mid-grid, the remaining queued cells must be cancelled and
    in-flight ones drained — otherwise they keep executing (and a
    store keeps appending) behind an exception the caller already saw.
    """

    # One worker, eight items: the first completion triggers the
    # raising callback, at which point only in-flight work can still
    # run — one extra item for a thread pool, a few more for a process
    # pool (its call queue prefetches and prefetched items cannot be
    # cancelled).  Everything beyond that must have been cancelled —
    # with all eight executed the bug is back.
    @pytest.mark.parametrize(
        "backend_cls,uncancellable",
        [(ThreadBackend, 2), (ProcessBackend, 6)],
    )
    def test_callback_failure_cancels_queued_items(
        self, backend_cls, uncancellable, tmp_path
    ):
        items = [(str(tmp_path), f"item{i}") for i in range(8)]

        def explode(index, result):
            raise RuntimeError("persist failed")

        with backend_cls(max_workers=1) as backend:
            with pytest.raises(RuntimeError, match="persist failed"):
                backend.map_stream(_mark_and_sleep, items, callback=explode)
        executed = sorted(p.name for p in tmp_path.iterdir())
        assert 1 <= len(executed) <= uncancellable, executed
        assert "item7" not in executed
        # close() already waited: the pool is quiescent, so no marker
        # appears after the fact.
        time.sleep(0.2)
        assert sorted(p.name for p in tmp_path.iterdir()) == executed


class TestResolveBackend:
    def test_none_and_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_explicit_names(self):
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_auto_serial_for_tiny_batches(self):
        assert isinstance(resolve_backend("auto", task_count=1), SerialBackend)

    def test_auto_respects_cpu_count(self):
        resolved = resolve_backend("auto", task_count=8, payload_probe=(1, 2))
        if (os.cpu_count() or 1) <= 1:
            assert isinstance(resolved, SerialBackend)
        else:
            assert isinstance(resolved, (ThreadBackend, ProcessBackend))

    def test_auto_goes_serial_for_unpicklable_payload(self):
        # Unpicklable work can't reach processes, and the search loops
        # are GIL-bound, so threads would be pure overhead.
        probe = lambda: None  # noqa: E731 - deliberately unpicklable
        resolved = resolve_backend("auto", task_count=8, payload_probe=probe)
        assert isinstance(resolved, SerialBackend)

    def test_backend_names_constant(self):
        assert set(BACKEND_NAMES) == {"serial", "thread", "process", "auto", "dag"}

    def test_payload_picklable(self):
        assert payload_picklable((1, "a"))
        assert not payload_picklable(lambda: None)


class TestParallelDesignSweep:
    """Serial and parallel sweeps must select the identical design."""

    def _optimizer(self, **kwargs):
        return DesignOptimizer(
            mpeg2_decoder(),
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=200),
            stop_after_feasible=3,
            seed=0,
            **kwargs,
        )

    def _assert_same_outcome(self, first, second):
        assert first.best is not None and second.best is not None
        assert first.best.mapping == second.best.mapping
        assert first.best.scaling == second.best.scaling
        assert first.best.power_mw == second.best.power_mw
        assert first.best.expected_seus == second.best.expected_seus
        assert len(first.assessments) == len(second.assessments)
        for a, b in zip(first.assessments, second.assessments):
            assert a.scaling == b.scaling
            assert a.feasible == b.feasible
            assert a.point.makespan_s == b.point.makespan_s
            assert a.point.power_mw == b.point.power_mw

    def test_thread_matches_serial(self):
        serial = self._optimizer().optimize()
        threaded = self._optimizer(backend="thread").optimize()
        self._assert_same_outcome(serial, threaded)

    def test_process_matches_serial(self):
        serial = self._optimizer().optimize()
        processed = self._optimizer().optimize(backend="process")
        self._assert_same_outcome(serial, processed)

    def test_fixed_mapping_flow_matches_serial(self):
        def build():
            return DesignOptimizer(
                mpeg2_decoder(),
                MPSoC.paper_reference(4),
                deadline_s=MPEG2_DEADLINE_S,
                mapper=baseline_mapper(RegisterUsageObjective()),
                remap_per_scaling=False,
                seed=1,
            )

        serial = build().optimize()
        threaded = build().optimize(backend="thread")
        self._assert_same_outcome(serial, threaded)

    def test_auto_backend_runs(self):
        outcome = self._optimizer(backend="auto").optimize()
        assert outcome.best is not None

    def test_parallel_evaluations_cover_serial_work(self):
        serial = self._optimizer().optimize()
        threaded = self._optimizer(backend="thread").optimize()
        # A parallel sweep cannot early-exit mid-flight, so it spends
        # at least the serial effort.
        assert threaded.evaluations >= serial.evaluations

    def test_scaling_jobs_are_picklable(self):
        optimizer = self._optimizer()
        job = optimizer._scaling_job((1, 1, 1, 1), None)
        assert pickle.loads(pickle.dumps(job)).scaling == (1, 1, 1, 1)


class TestProfilePlumbing:
    def test_profile_backend_reaches_optimizer(self):
        from repro.experiments.common import build_optimizer

        profile = ExperimentProfile.fast().with_backend("thread")
        optimizer = build_optimizer(
            mpeg2_decoder(), 4, MPEG2_DEADLINE_S, profile
        )
        assert optimizer.backend == "thread"

    def test_with_backend_keeps_other_fields(self):
        profile = ExperimentProfile.fast(seed=3).with_backend("auto")
        assert profile.exec_backend == "auto"
        assert profile.seed == 3
        assert profile.name == "fast"

    def test_default_profile_is_serial(self):
        assert ExperimentProfile.fast().exec_backend == "serial"
