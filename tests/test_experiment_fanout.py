"""Experiment-level fan-out: reports must be byte-identical to serial."""

import pickle

import pytest

from repro.experiments import ExperimentProfile, run_fig10, run_table3
from repro.experiments.common import run_cells, worker_profile
from repro.experiments.runner import render_report, run_all
from repro.experiments.table3 import _Table3CellJob
from repro.taskgraph import RandomGraphConfig, random_task_graph

# This module deliberately exercises the deprecated per-cut pools —
# they remain the legacy-parity reference paths.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny",
        search_iterations=150,
        sa_iterations=300,
        fig3_mappings=40,
        stop_after_feasible=2,
        seed=0,
    )


@pytest.fixture(scope="module")
def tiny_app():
    config = RandomGraphConfig(num_tasks=12)
    return random_task_graph(config, seed=3), config.deadline_s


class TestWorkerProfile:
    def test_forces_all_cuts_serial(self):
        profile = ExperimentProfile.fast().with_backend(
            exec_backend="process",
            experiment_backend="thread",
            restart_backend="auto",
        )
        inner = worker_profile(profile)
        assert inner.exec_backend == "serial"
        assert inner.experiment_backend == "serial"
        assert inner.restart_backend == "serial"
        # Everything that determines results is untouched.
        assert inner.seed == profile.seed
        assert inner.search_iterations == profile.search_iterations
        assert inner.name == profile.name

    def test_run_cells_empty(self, tiny_profile):
        assert run_cells([], tiny_profile, backend="thread") == []


class TestTable3FanOut:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_report_byte_identical(self, tiny_profile, tiny_app, backend):
        graph, deadline_s = tiny_app
        applications = [("tiny", graph, deadline_s)]
        serial = run_table3(
            tiny_profile, core_counts=(2, 3), applications=applications
        )
        parallel = run_table3(
            tiny_profile,
            core_counts=(2, 3),
            applications=applications,
            backend=backend,
        )
        assert serial.format_table() == parallel.format_table()
        assert serial.apps() == parallel.apps()
        assert serial.shape_checks() == parallel.shape_checks()
        assert render_report("table3", serial, tiny_profile) == render_report(
            "table3", parallel, tiny_profile
        )

    def test_profile_backend_is_the_default_spec(self, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        applications = [("tiny", graph, deadline_s)]
        serial = run_table3(
            tiny_profile, core_counts=(2,), applications=applications
        )
        via_profile = run_table3(
            tiny_profile.with_backend(experiment_backend="thread"),
            core_counts=(2,),
            applications=applications,
        )
        assert serial.format_table() == via_profile.format_table()

    def test_cell_jobs_are_picklable(self, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        job = _Table3CellJob(
            label="tiny",
            graph=graph,
            deadline_s=deadline_s,
            num_cores=2,
            seed_offset=2,
            profile=tiny_profile,
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.label == "tiny"
        assert clone.num_cores == 2


class TestFig10FanOut:
    def test_report_byte_identical(self, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        serial = run_fig10(
            tiny_profile, graph=graph, deadline_s=deadline_s, core_counts=(2, 3)
        )
        threaded = run_fig10(
            tiny_profile,
            graph=graph,
            deadline_s=deadline_s,
            core_counts=(2, 3),
            backend="thread",
        )
        assert serial.format_table() == threaded.format_table()
        assert serial.seu_reduction_percent() == threaded.seu_reduction_percent()
        assert serial.power_premium_percent() == threaded.power_premium_percent()


class TestRunAllFanOut:
    # fig3 + table2 are the two cheapest experiments; the contract is
    # per-cell, so a subset proves the same plumbing the full set uses.
    IDS = ("fig3", "table2")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_reports_byte_identical(self, tiny_profile, backend):
        serial = run_all(tiny_profile, ids=self.IDS)
        parallel = run_all(tiny_profile, backend=backend, ids=self.IDS)
        assert list(serial) == list(parallel) == list(self.IDS)
        for experiment_id in self.IDS:
            assert serial[experiment_id][1] == parallel[experiment_id][1]

    def test_subset_preserves_order(self, tiny_profile):
        results = run_all(tiny_profile, ids=("table2", "fig3"))
        assert list(results) == ["table2", "fig3"]

    def test_unknown_id_raises(self, tiny_profile):
        with pytest.raises(KeyError, match="fig99"):
            run_all(tiny_profile, ids=("fig99",))
