"""Tests for the experiment harness (trimmed budgets for CI speed)."""

import pytest

from repro.experiments import (
    ExperimentProfile,
    run_fig10,
    run_fig11,
    run_fig3,
    run_fig9,
    run_table2,
    run_table3,
)
from repro.experiments.common import (
    build_evaluator,
    build_platform,
    format_mapping_groups,
    format_table,
    percent_delta,
)
from repro.experiments.runner import experiment_ids, render_report, run_experiment
from repro.taskgraph import RandomGraphConfig, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


@pytest.fixture(scope="module")
def tiny_profile():
    """Budgets sized for unit tests."""
    return ExperimentProfile(
        name="tiny",
        search_iterations=150,
        sa_iterations=300,
        fig3_mappings=40,
        stop_after_feasible=2,
        seed=0,
    )


class TestProfiles:
    def test_presets(self):
        assert ExperimentProfile.fast().name == "fast"
        full = ExperimentProfile.full()
        assert full.stop_after_feasible is None
        assert full.search_iterations > ExperimentProfile.fast().search_iterations

    def test_with_seed(self):
        assert ExperimentProfile.fast().with_seed(7).seed == 7

    def test_annealing_config(self, tiny_profile):
        assert tiny_profile.annealing_config().max_iterations == 300


class TestCommonHelpers:
    def test_build_platform(self):
        platform = build_platform(3, num_levels=2)
        assert platform.num_cores == 3
        assert platform.scaling_table.num_levels == 2

    def test_build_evaluator(self):
        evaluator = build_evaluator(mpeg2_decoder(), 4, MPEG2_DEADLINE_S)
        assert evaluator.deadline_s == MPEG2_DEADLINE_S

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_mapping_groups(self):
        assert format_mapping_groups([["t1"], []]) == "c1:t1 | c2:-"

    def test_percent_delta(self):
        assert percent_delta(110, 100) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            percent_delta(1, 0)


class TestFig3(object):
    @pytest.fixture(scope="class")
    def result(self, tiny_profile):
        return run_fig3(tiny_profile)

    def test_sample_size(self, result, tiny_profile):
        assert len(result.points) >= tiny_profile.fig3_mappings * 0.7

    def test_series_lengths_match(self, result):
        assert len(result.series_a()) == len(result.series_b()) == len(
            result.series_c()
        )

    def test_tm_ratio_is_two(self, result):
        # Frequency halves, T_M doubles — exact in our timing model.
        assert result.mean_tm_ratio() == pytest.approx(2.0, rel=1e-9)

    def test_gamma_ratio_is_2_5(self, result):
        # The lambda(V) calibration target.
        assert result.mean_gamma_ratio() == pytest.approx(2.5, rel=0.02)

    def test_tradeoff_negative_correlation(self, result):
        assert result.tm_r_correlation() < 0

    def test_format_table(self, result):
        assert "T_M(s=1)" in result.format_table()


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, tiny_profile):
        return run_table2(tiny_profile)

    def test_four_rows(self, result):
        assert [row.experiment for row in result.rows] == [
            "Exp:1",
            "Exp:2",
            "Exp:3",
            "Exp:4",
        ]

    def test_all_meet_deadline(self, result):
        assert result.shape_checks()["all_meet_deadline"]

    def test_row_lookup(self, result):
        assert result.row("Exp:4").experiment == "Exp:4"
        with pytest.raises(KeyError):
            result.row("Exp:9")

    def test_format_table_has_columns(self, result):
        text = result.format_table()
        for header in ("P,mW", "R,kb/c", "Gamma"):
            assert header in text

    def test_nominal_makespans_recorded(self, result):
        for row in result.rows:
            assert row.nominal_makespan_s > 0


class TestFig9:
    def test_reuses_table2_designs(self, tiny_profile):
        table2 = run_table2(tiny_profile)
        result = run_fig9(tiny_profile, table2=table2)
        assert set(result.points) == {"Exp:1", "Exp:2", "Exp:3", "Exp:4"}
        # The common scaling defaults to Exp:4's Table II choice.
        assert result.scaling == table2.row("Exp:4").point.scaling
        bars = result.bars()
        assert len(bars) == 3

    def test_fresh_mode(self, tiny_profile):
        result = run_fig9(tiny_profile)
        assert set(result.points) == {"Exp:1", "Exp:2", "Exp:3", "Exp:4"}
        assert "dSEU%" in result.format_table()


class TestTable3:
    def test_small_sweep(self, tiny_profile):
        graph = random_task_graph(RandomGraphConfig(num_tasks=12), seed=3)
        result = run_table3(
            tiny_profile,
            core_counts=(2, 3),
            applications=[("tiny", graph, RandomGraphConfig(num_tasks=12).deadline_s)],
        )
        assert result.apps() == ["tiny"]
        assert result.cell("tiny", 2).feasible
        assert len(result.power_series("tiny")) == 2
        assert "P(2c)" in result.format_table()

    def test_monotonicity_helper(self, tiny_profile):
        graph = random_task_graph(RandomGraphConfig(num_tasks=12), seed=3)
        result = run_table3(
            tiny_profile,
            core_counts=(2, 3),
            applications=[("tiny", graph, RandomGraphConfig(num_tasks=12).deadline_s)],
        )
        assert 0.0 <= result.gamma_monotonicity("tiny") <= 1.0


class TestFig10:
    def test_small_graph(self, tiny_profile):
        config = RandomGraphConfig(num_tasks=14)
        graph = random_task_graph(config, seed=5)
        result = run_fig10(
            tiny_profile,
            graph=graph,
            deadline_s=config.deadline_s,
            core_counts=(2, 3),
        )
        assert len(result.cells) == 2
        assert result.seu_reduction_percent()
        assert "Exp:3 P,mW" in result.format_table()

    def test_requires_deadline_with_custom_graph(self, tiny_profile):
        graph = random_task_graph(RandomGraphConfig(num_tasks=10), seed=1)
        with pytest.raises(ValueError):
            run_fig10(tiny_profile, graph=graph)


class TestFig11:
    def test_small_graph(self, tiny_profile):
        config = RandomGraphConfig(num_tasks=12)
        graph = random_task_graph(config, seed=6)
        result = run_fig11(
            tiny_profile,
            graph=graph,
            deadline_s=config.deadline_s * 1.6,
            num_cores=3,
            level_counts=(2, 3),
        )
        assert set(result.points) == {2, 3}
        assert "Levels" in result.format_table()


class TestRunner:
    def test_experiment_ids(self):
        assert set(experiment_ids()) == {
            "fig3",
            "table2",
            "fig9",
            "table3",
            "fig10",
            "fig11",
            "hetero",
        }

    def test_run_experiment_fig3(self, tiny_profile):
        result, report = run_experiment("fig3", tiny_profile)
        assert result.points
        assert "shape checks" in report
        assert "Fig. 3" in report

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_render_report_includes_profile(self, tiny_profile):
        result = run_fig3(tiny_profile)
        report = render_report("fig3", result, tiny_profile)
        assert "tiny" in report
