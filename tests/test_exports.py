"""Tests for the auxiliary export utilities (DOT, schedule rows)."""

from repro.mapping import Mapping
from repro.sched import ListScheduler


class TestDotExport:
    def test_contains_nodes_and_edges(self, mpeg2):
        dot = mpeg2.to_dot()
        assert dot.startswith('digraph "mpeg2-decoder"')
        assert '"t1"' in dot and '"t11"' in dot
        assert '"t1" -> "t2"' in dot
        assert dot.rstrip().endswith("}")

    def test_labels_included(self, mpeg2):
        assert "Inv. DCT by row" in mpeg2.to_dot()

    def test_edge_costs_annotated(self, fig8):
        dot = fig8.to_dot()
        assert 'label="' in dot


class TestScheduleRows:
    def test_rows_cover_all_tasks(self, mpeg2, rr_mapping4):
        schedule = ListScheduler(mpeg2, [2e8] * 4).schedule(rr_mapping4)
        rows = schedule.to_rows()
        assert len(rows) == mpeg2.num_tasks
        names = {row[0] for row in rows}
        assert names == set(mpeg2.task_names())

    def test_rows_ordered_by_start(self, mpeg2, rr_mapping4):
        schedule = ListScheduler(mpeg2, [2e8] * 4).schedule(rr_mapping4)
        starts = [row[2] for row in schedule.to_rows()]
        assert starts == sorted(starts)

    def test_row_contents_match_entries(self, pipeline6):
        mapping = Mapping.all_on_core(pipeline6, 1, 0)
        schedule = ListScheduler(pipeline6, [1e8]).schedule(mapping)
        for name, core, start, finish, compute, receive in schedule.to_rows():
            entry = schedule.entry(name)
            assert core == entry.core
            assert start == entry.start_s
            assert finish == entry.finish_s
            assert compute == entry.compute_cycles
            assert receive == entry.receive_cycles
