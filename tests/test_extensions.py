"""Tests for the extension modules: Pareto exploration, reliability
metrics and report writers."""

import math

import pytest

from repro.experiments.common import ExperimentProfile, format_table
from repro.experiments.reporting import (
    ascii_table_to_csv,
    checks_markdown,
    rows_to_csv,
    table_to_markdown,
    write_experiment_reports,
)
from repro.faults.reliability import (
    DEFAULT_AVF,
    expected_failures,
    failure_probability,
    gamma_for_failure_budget,
    mean_executions_to_failure,
    ser_sweep,
)
from repro.optim.pareto import (
    dominates,
    explore_pareto,
    hypervolume_2d,
    pareto_front,
)
from repro.optim.design_optimizer import sea_mapper
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


# ---------------------------------------------------------------------------
# Pareto
# ---------------------------------------------------------------------------


class TestParetoFront:
    @pytest.fixture
    def points(self, mpeg2_evaluator, mpeg2):
        from repro.mapping.enumeration import sample_mappings

        mappings = sample_mappings(mpeg2, 4, 20, seed=0)
        out = []
        for scaling in [(1, 1, 1, 1), (2, 2, 2, 2)]:
            for mapping in mappings[:10]:
                out.append(mpeg2_evaluator.evaluate(mapping, scaling))
        return out

    def test_front_is_non_dominated(self, points):
        front = pareto_front(points)
        assert front
        for a in front:
            for b in front:
                assert not dominates(a, b)

    def test_front_dominates_or_ties_rest(self, points):
        front = pareto_front(points)
        for point in points:
            assert any(
                not dominates(point, member) for member in front
            )  # nothing outside strictly beats the front

    def test_front_sorted_by_power(self, points):
        front = pareto_front(points)
        powers = [point.power_mw for point in front]
        assert powers == sorted(powers)

    def test_front_of_single_point(self, points):
        assert pareto_front(points[:1]) == points[:1]

    def test_dominates_semantics(self, points):
        a, b = points[0], points[1]
        if dominates(a, b):
            assert a.power_mw <= b.power_mw + 1e-12
            assert a.expected_seus <= b.expected_seus + 1e-12

    def test_explore_pareto_contains_feasible_designs(self, mpeg2, platform4):
        front = explore_pareto(
            mpeg2,
            platform4,
            MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=150),
            seed=0,
        )
        assert front
        for point in front:
            assert point.makespan_s <= MPEG2_DEADLINE_S + 1e-9

    def test_explore_pareto_rejects_bad_deadline(self, mpeg2, platform4):
        with pytest.raises(ValueError):
            explore_pareto(mpeg2, platform4, 0.0)

    def test_hypervolume_monotone_in_front_size(self, points):
        front = pareto_front(points)
        reference = (
            max(point.power_mw for point in points) * 1.1,
            max(point.expected_seus for point in points) * 1.1,
        )
        full = hypervolume_2d(front, reference)
        partial = hypervolume_2d(front[:1], reference)
        assert full >= partial >= 0

    def test_hypervolume_requires_two_axes(self, points):
        with pytest.raises(ValueError):
            hypervolume_2d(points, (1, 1), axes=[lambda p: p.power_mw])


# ---------------------------------------------------------------------------
# Reliability metrics
# ---------------------------------------------------------------------------


class TestReliability:
    def test_failure_probability_limits(self):
        assert failure_probability(0.0) == 0.0
        assert failure_probability(1e12, avf=1.0) == pytest.approx(1.0)

    def test_failure_probability_formula(self):
        assert failure_probability(10.0, avf=0.1) == pytest.approx(
            1.0 - math.exp(-1.0)
        )

    def test_expected_failures(self):
        assert expected_failures(100.0, avf=0.05) == pytest.approx(5.0)

    def test_mtef_inverse(self):
        gamma = 2.0
        probability = failure_probability(gamma)
        assert mean_executions_to_failure(gamma) == pytest.approx(1.0 / probability)

    def test_mtef_infinite_when_safe(self):
        assert mean_executions_to_failure(0.0) == math.inf

    def test_budget_inversion_round_trip(self):
        budget = 0.01
        gamma = gamma_for_failure_budget(budget, avf=DEFAULT_AVF)
        assert failure_probability(gamma, avf=DEFAULT_AVF) == pytest.approx(budget)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_avf_validation(self, bad):
        with pytest.raises(ValueError):
            failure_probability(1.0, avf=bad)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            failure_probability(-1.0)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            gamma_for_failure_budget(0.0)
        with pytest.raises(ValueError):
            gamma_for_failure_budget(0.5, avf=0.0)

    def test_ser_sweep_linear(self, mpeg2_evaluator, rr_mapping4):
        rates = [1e-10, 1e-9, 1e-8]
        sweep = ser_sweep(mpeg2_evaluator, rr_mapping4, (1, 1, 1, 1), rates)
        assert len(sweep) == 3
        (r0, g0), (r1, g1), (r2, g2) = sweep
        assert g1 == pytest.approx(10 * g0, rel=1e-9)
        assert g2 == pytest.approx(100 * g0, rel=1e-9)

    def test_ser_sweep_rejects_bad_rate(self, mpeg2_evaluator, rr_mapping4):
        with pytest.raises(ValueError):
            ser_sweep(mpeg2_evaluator, rr_mapping4, (1, 1, 1, 1), [0.0])


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


class TestReporting:
    def test_table_to_markdown(self):
        ascii_table = format_table(["a", "b"], [["1", "2"], ["3", "4"]])
        markdown = table_to_markdown(ascii_table)
        assert markdown.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in markdown

    def test_checks_markdown(self):
        text = checks_markdown({"good": True, "bad": False})
        assert "- [x] `good`" in text
        assert "- [ ] `bad`" in text

    def test_rows_to_csv(self):
        text = rows_to_csv(["x", "y"], [[1, 2], [3, 4]])
        assert text.splitlines()[0] == "x,y"
        assert "3,4" in text

    def test_ascii_table_to_csv(self):
        ascii_table = format_table(["col a", "col b"], [["v 1", "v 2"]])
        csv_text = ascii_table_to_csv(ascii_table)
        assert "col a,col b" in csv_text

    def test_experiment_markdown_and_files(self, tmp_path):
        profile = ExperimentProfile(
            name="tiny",
            search_iterations=100,
            sa_iterations=200,
            fig3_mappings=25,
            stop_after_feasible=2,
            seed=0,
        )
        written = write_experiment_reports(tmp_path, profile, ids=["fig3"])
        markdown = written["fig3"].read_text()
        assert markdown.startswith("## fig3")
        assert "Shape checks" in markdown
        assert (tmp_path / "fig3.csv").read_text().strip()
