"""Tests for the SER model, SEU sampling and the fault injector."""

import math

import numpy as np
import pytest

from repro.faults import FaultInjector, SERModel, SEUEvent, sample_seu_count
from repro.sim import MPSoCSimulator


class TestSERModel:
    def test_reference_rate_at_nominal_voltage(self, ser_model):
        assert ser_model.rate(1.0) == pytest.approx(1e-9)

    def test_calibration_point(self, ser_model):
        # Fig. 3(c) calibration: lambda(0.58 V) / lambda(1 V) = 2.5.
        assert ser_model.rate_ratio(0.58) == pytest.approx(2.5, rel=1e-3)

    def test_rate_monotone_decreasing_in_voltage(self, ser_model):
        voltages = [0.4, 0.58, 0.8, 1.0, 1.2]
        rates = [ser_model.rate(v) for v in voltages]
        assert rates == sorted(rates, reverse=True)

    def test_boost_voltage_reduces_rate(self, ser_model):
        assert ser_model.rate(1.2) < ser_model.rate(1.0)

    def test_exponential_law(self, ser_model):
        # log(lambda) is linear in (V_ref - V).
        delta = math.log(ser_model.rate(0.8)) - math.log(ser_model.rate(0.9))
        delta2 = math.log(ser_model.rate(0.7)) - math.log(ser_model.rate(0.8))
        assert delta == pytest.approx(delta2)

    def test_rate_per_bit_second(self, ser_model):
        assert ser_model.rate_per_bit_second(1.0) == pytest.approx(1e-9 * 2e8)

    def test_expected_seus(self, ser_model):
        # 1 kbit over 1e6 cycles at nominal: 1e-9 * 1000 * 1e6 = 1.
        assert ser_model.expected_seus(1000, 1e6, 1.0) == pytest.approx(1.0)

    def test_expected_seus_wall_time(self, ser_model):
        # 1 kbit for 5 ms at nominal: 1e-9 * 2e8 * 1000 * 5e-3 = 1.
        assert ser_model.expected_seus_wall_time(1000, 5e-3, 1.0) == pytest.approx(1.0)

    def test_with_reference_rate(self, ser_model):
        scaled = ser_model.with_reference_rate(2e-9)
        assert scaled.rate(1.0) == pytest.approx(2e-9)
        assert scaled.rate_ratio(0.58) == pytest.approx(ser_model.rate_ratio(0.58))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reference_rate": 0.0},
            {"reference_vdd_v": -1.0},
            {"beta": -0.1},
            {"reference_frequency_hz": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SERModel(**kwargs)

    def test_rejects_non_positive_voltage(self, ser_model):
        with pytest.raises(ValueError):
            ser_model.rate(0.0)

    def test_rejects_negative_exposure(self, ser_model):
        with pytest.raises(ValueError):
            ser_model.expected_seus(-1, 10, 1.0)


class TestSEUSampling:
    def test_zero_mean_gives_zero(self):
        assert sample_seu_count(0.0, 1000, 1000) == 0
        assert sample_seu_count(1e-9, 0, 1000) == 0

    def test_poisson_mean(self):
        rng = np.random.default_rng(7)
        mean = 50.0
        draws = [sample_seu_count(1.0, mean, 1.0, rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(mean, rel=0.05)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sample_seu_count(-1.0, 1, 1)
        with pytest.raises(ValueError):
            sample_seu_count(1.0, -1, 1)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            SEUEvent(time_s=-1.0, core=0, register_name="r", bit_index=0)
        with pytest.raises(ValueError):
            SEUEvent(time_s=0.0, core=-1, register_name="r", bit_index=0)
        with pytest.raises(ValueError):
            SEUEvent(time_s=0.0, core=0, register_name="r", bit_index=-1)


class TestFaultInjector:
    @pytest.fixture
    def simulation(self, mpeg2, platform4, rr_mapping4):
        simulator = MPSoCSimulator(mpeg2, platform4, scaling=(1, 1, 1, 1))
        return simulator.run(rr_mapping4)

    def test_counts_match_expectation(self, simulation):
        injector = FaultInjector(seed=0)
        campaign = injector.inject(simulation, voltages_v=[1.0] * 4, runs=30)
        # Poisson sum: relative error ~ 1/sqrt(mean); 30 runs give a
        # tight bound at these exposure levels.
        assert campaign.total_seus == pytest.approx(campaign.expected_seus, rel=0.05)

    def test_expectation_matches_analytic_eq3(
        self, simulation, mpeg2_evaluator, rr_mapping4
    ):
        # The injector's mean equals the evaluator's Eq. (3) Gamma.
        injector = FaultInjector(seed=1)
        campaign = injector.inject(simulation, voltages_v=[1.0] * 4, runs=1)
        point = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        # Small float drift between the schedule-derived window and the
        # interval-sum exposure is expected (<0.1%).
        assert campaign.expected_seus == pytest.approx(point.expected_seus, rel=1e-3)

    def test_lower_voltage_increases_counts(self, simulation):
        injector = FaultInjector(seed=2)
        nominal = injector.inject(simulation, voltages_v=[1.0] * 4, runs=5)
        scaled = injector.inject(simulation, voltages_v=[0.58] * 4, runs=5)
        assert scaled.expected_seus == pytest.approx(
            2.5 * nominal.expected_seus, rel=1e-3
        )

    def test_reproducible(self, simulation):
        a = FaultInjector(seed=3).inject(simulation, voltages_v=[1.0] * 4)
        b = FaultInjector(seed=3).inject(simulation, voltages_v=[1.0] * 4)
        assert a.total_seus == b.total_seus
        assert a.per_core_seus == b.per_core_seus

    def test_per_core_counts_sum(self, simulation):
        campaign = FaultInjector(seed=4).inject(simulation, voltages_v=[1.0] * 4)
        assert sum(campaign.per_core_seus.values()) == campaign.total_seus

    def test_event_materialization(self, simulation, mpeg2):
        injector = FaultInjector(seed=5, max_events=500)
        campaign = injector.inject(
            simulation, voltages_v=[1.0] * 4, collect_events=True
        )
        assert campaign.events
        assert len(campaign.events) <= 500
        register_names = {
            register.name
            for name in mpeg2.task_names()
            for register in mpeg2.registers_of(name)
        }
        for event in campaign.events[:50]:
            assert event.register_name in register_names
            assert 0.0 <= event.time_s <= simulation.makespan_s + 1e-9

    def test_rejects_wrong_voltage_count(self, simulation):
        with pytest.raises(ValueError):
            FaultInjector(seed=0).inject(simulation, voltages_v=[1.0])

    def test_rejects_zero_runs(self, simulation):
        with pytest.raises(ValueError):
            FaultInjector(seed=0).inject(simulation, voltages_v=[1.0] * 4, runs=0)

    def test_mean_per_run(self, simulation):
        campaign = FaultInjector(seed=6).inject(
            simulation, voltages_v=[1.0] * 4, runs=10
        )
        assert campaign.mean_seus_per_run == pytest.approx(campaign.total_seus / 10)
