"""Heterogeneous-platform & tech-node parity suite.

The house invariant of the platform generalization: a *single-type*
platform at the default technology node is **bit-identical** to the
seed's homogeneous path — schedules, metrics, RNG streams and cache
counters all match exactly, no tolerances.  These tests sweep random
graphs/mappings/moves through both constructions and assert equality,
then check the genuinely heterogeneous paths against their own
reference implementations and the node model against its physics.
"""

import json
import random

import pytest

from repro.arch import MPSoC, ScalingTable
from repro.arch.core import CoreSpec, CoreType
from repro.arch.dvs import ScalingLevel
from repro.arch.platform import (
    DEFAULT_PLATFORM,
    PlatformModel,
    arm7_core_type,
    platform_model,
    platform_names,
)
from repro.arch.technode import TECH_NODES, TechNode
from repro.faults import SERModel
from repro.mapping import Mapping, MappingEvaluator
from repro.mapping.incremental import IncrementalMappingState
from repro.optim import (
    DesignOptimizer,
    num_platform_scaling_combinations,
    num_scaling_combinations,
    platform_scaling_combinations,
    scaling_combinations,
    sea_mapper,
)
from repro.sched import ListScheduler
from repro.taskgraph import (
    fork_join_graph,
    mpeg2_decoder,
    pipeline_graph,
    streaming_pipeline_graph,
    tgff_random_graph,
)
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S

POINT_FIELDS = (
    "scaling",
    "power_mw",
    "register_bits_per_core",
    "register_bits_total",
    "execution_cycles_per_core",
    "makespan_s",
    "makespan_cycles",
    "expected_seus",
    "activities",
    "meets_deadline",
)


def _seed_and_platform_pair(num_cores, num_levels=3):
    """The seed homogeneous MPSoC and its PlatformModel-built twin."""
    seed = MPSoC(num_cores, scaling_table=ScalingTable.arm7_levels(num_levels))
    twin = PlatformModel(
        name="arm7", core_types=(arm7_core_type(num_levels),)
    ).instantiate(num_cores)
    return seed, twin


def _random_graph(rng, trial):
    kind = trial % 4
    if kind == 0:
        return mpeg2_decoder()
    if kind == 1:
        return pipeline_graph(rng.randrange(3, 9))
    if kind == 2:
        return fork_join_graph(rng.randrange(2, 6))
    return tgff_random_graph(rng.randrange(10, 40), seed=trial)


def _random_mapping(rng, graph, num_cores):
    return Mapping(
        {task.name: rng.randrange(num_cores) for task in graph.tasks()},
        num_cores,
    )


def _assert_points_equal(point_a, point_b):
    for field in POINT_FIELDS:
        assert getattr(point_a, field) == getattr(point_b, field), field


# ---------------------------------------------------------------------------
# K=1 bit-identity: platform-model construction vs the seed path
# ---------------------------------------------------------------------------


class TestSingleTypeBitIdentity:
    def test_single_type_platform_aliases_seed_objects(self):
        _, twin = _seed_and_platform_pair(4)
        assert not twin.is_heterogeneous
        assert twin.uniform_unit_cycles
        # All cores share one table *object* — the seed's float path.
        tables = twin.core_tables
        assert all(table is tables[0] for table in tables)
        assert tables[0] is twin.scaling_table

    def test_schedules_bit_identical(self):
        rng = random.Random(0xA1)
        for trial in range(12):
            graph = _random_graph(rng, trial)
            num_cores = rng.randrange(1, 6)
            seed, twin = _seed_and_platform_pair(num_cores)
            mapping = _random_mapping(rng, graph, num_cores)
            scaling = tuple(
                rng.randrange(1, seed.scaling_table.num_levels + 1)
                for _ in range(num_cores)
            )
            sched_seed = ListScheduler.for_platform(graph, seed, scaling)
            sched_twin = ListScheduler.for_platform(graph, twin, scaling)
            a = sched_seed.schedule(mapping)
            b = sched_twin.schedule(mapping)
            assert list(a) == list(b)
            assert a.makespan_s() == b.makespan_s()
            ref = sched_twin.schedule_reference(mapping)
            assert list(b) == list(ref)

    def test_evaluations_and_counters_bit_identical(self):
        rng = random.Random(0xB2)
        for trial in range(8):
            graph = _random_graph(rng, trial)
            num_cores = rng.randrange(2, 5)
            seed, twin = _seed_and_platform_pair(num_cores)
            ev_seed = MappingEvaluator(graph, seed, deadline_s=MPEG2_DEADLINE_S)
            ev_twin = MappingEvaluator(graph, twin, deadline_s=MPEG2_DEADLINE_S)
            # Identical call sequence, with deliberate repeats to
            # exercise the LRU cache the same way on both sides.
            cases = [
                (
                    _random_mapping(rng, graph, num_cores),
                    tuple(
                        rng.randrange(1, 4) for _ in range(num_cores)
                    ),
                )
                for _ in range(6)
            ]
            cases += cases[:3]
            for mapping, scaling in cases:
                _assert_points_equal(
                    ev_seed.evaluate(mapping, scaling),
                    ev_twin.evaluate(mapping, scaling),
                )
            assert ev_seed.evaluations == ev_twin.evaluations
            assert ev_seed.cache_hits == ev_twin.cache_hits
            assert ev_seed.cache_misses == ev_twin.cache_misses

    def test_evaluate_batch_bit_identical(self):
        rng = random.Random(0xC3)
        graph = mpeg2_decoder()
        seed, twin = _seed_and_platform_pair(4)
        ev_seed = MappingEvaluator(graph, seed, deadline_s=MPEG2_DEADLINE_S)
        ev_twin = MappingEvaluator(graph, twin, deadline_s=MPEG2_DEADLINE_S)
        mappings = [_random_mapping(rng, graph, 4) for _ in range(12)]
        scaling = (2, 1, 3, 1)
        for a, b in zip(
            ev_seed.evaluate_batch(mappings, scaling),
            ev_twin.evaluate_batch(mappings, scaling),
        ):
            _assert_points_equal(a, b)
        assert ev_seed.cache_hits == ev_twin.cache_hits
        assert ev_seed.cache_misses == ev_twin.cache_misses

    def test_incremental_previews_bit_identical(self):
        rng = random.Random(0xD4)
        for trial in range(6):
            graph = _random_graph(rng, trial)
            num_cores = rng.randrange(2, 5)
            seed, twin = _seed_and_platform_pair(num_cores)
            mapping = _random_mapping(rng, graph, num_cores)
            scaling = tuple(rng.randrange(1, 4) for _ in range(num_cores))
            ev_seed = MappingEvaluator(graph, seed, deadline_s=MPEG2_DEADLINE_S)
            ev_twin = MappingEvaluator(graph, twin, deadline_s=MPEG2_DEADLINE_S)
            state_seed = IncrementalMappingState(ev_seed, mapping, scaling)
            state_twin = IncrementalMappingState(ev_twin, mapping, scaling)
            names = [task.name for task in graph.tasks()]
            assert state_seed.estimate_current() == state_twin.estimate_current()
            for _ in range(20):
                if rng.random() < 0.5 or len(names) < 2:
                    task = rng.choice(names)
                    core = rng.randrange(num_cores)
                    assert state_seed.estimate_move(
                        task, core
                    ) == state_twin.estimate_move(task, core)
                    if rng.random() < 0.3:
                        state_seed.apply_move(task, core)
                        state_twin.apply_move(task, core)
                else:
                    task_a, task_b = rng.sample(names, 2)
                    assert state_seed.estimate_swap(
                        task_a, task_b
                    ) == state_twin.estimate_swap(task_a, task_b)
                    if rng.random() < 0.3:
                        state_seed.apply_swap(task_a, task_b)
                        state_twin.apply_swap(task_a, task_b)

    def test_annealing_rng_stream_bit_identical(self):
        graph = mpeg2_decoder()
        seed, twin = _seed_and_platform_pair(4)
        mapper = sea_mapper(search_iterations=150)
        results = []
        for platform in (seed, twin):
            evaluator = MappingEvaluator(
                graph, platform, deadline_s=MPEG2_DEADLINE_S
            )
            point = mapper(evaluator, (1, 1, 1, 1), seed=7)
            results.append((point, evaluator))
        point_a, ev_a = results[0]
        point_b, ev_b = results[1]
        _assert_points_equal(point_a, point_b)
        assert point_a.mapping.as_dict() == point_b.mapping.as_dict()
        # Identical RNG streams imply identical evaluator traffic.
        assert ev_a.evaluations == ev_b.evaluations
        assert ev_a.cache_hits == ev_b.cache_hits
        assert ev_a.cache_misses == ev_b.cache_misses

    def test_design_optimizer_bit_identical(self):
        graph = mpeg2_decoder()
        seed, twin = _seed_and_platform_pair(4)
        best = []
        for platform in (seed, twin):
            optimizer = DesignOptimizer(
                graph,
                platform,
                deadline_s=MPEG2_DEADLINE_S,
                mapper=sea_mapper(search_iterations=60),
                seed=3,
                stop_after_feasible=8,
            )
            best.append(optimizer.optimize().best)
        assert best[0] is not None and best[1] is not None
        _assert_points_equal(best[0], best[1])
        assert best[0].mapping.as_dict() == best[1].mapping.as_dict()

    def test_arm7_preset_matches_paper_reference(self):
        preset = platform_model(DEFAULT_PLATFORM).instantiate(4)
        reference = MPSoC.paper_reference(4)
        assert preset.scaling_table.levels == reference.scaling_table.levels
        assert preset.core_spec == reference.core_spec
        assert preset.scaling_vector() == reference.scaling_vector()


# ---------------------------------------------------------------------------
# Technology-node model
# ---------------------------------------------------------------------------


class TestTechNode:
    def test_default_node_is_identity(self):
        node = TechNode()
        assert node.is_default
        table = ScalingTable.arm7_three_level()
        spec = CoreSpec()
        ser = SERModel()
        core_type = arm7_core_type()
        # Same *objects* back — the seed path is untouched.
        assert node.scale_table(table) is table
        assert node.scale_spec(spec) is spec
        assert node.scale_ser(ser) is ser
        assert node.scale_core_type(core_type) is core_type

    def test_parse_variants_and_canonical_name(self):
        assert TechNode.parse("45") == TechNode.parse("45nm")
        assert TechNode.parse("45nm") == TechNode.parse("45nm-itrs")
        assert TechNode.parse("default") == TechNode()
        assert TechNode.parse("22nm-cons").name == "22nm-cons"
        with pytest.raises(ValueError):
            TechNode.parse("7nm")
        with pytest.raises(ValueError):
            TechNode.parse("45nm-bogus")

    def test_scaled_table_tracks_factors(self):
        node = TechNode.parse("22nm")
        base = ScalingTable.arm7_three_level()
        scaled = node.scale_table(base)
        for level, ref in zip(scaled.levels, base.levels):
            assert level.frequency_mhz == ref.frequency_mhz * node.freq_scale
            assert level.vdd_v == ref.vdd_v * node.vdd_scale

    def test_scale_table_drops_sub_vth_levels(self):
        # The ARM7 presets never cross Vth at any node, so use a
        # synthetic near-threshold level to hit the drop branch.
        table = ScalingTable(
            [ScalingLevel.from_frequency(200.0), ScalingLevel(10.0, 0.25)],
            name="near-vth",
        )
        node = TechNode.parse("8nm")  # vdd_scale 0.62, vth 0.198
        scaled = node.scale_table(table)
        assert scaled.num_levels == 1
        assert scaled.levels[0].frequency_mhz == 200.0 * node.freq_scale
        all_low = ScalingTable([ScalingLevel(10.0, 0.25)], name="sub-vth")
        with pytest.raises(ValueError):
            node.scale_table(all_low)

    def test_fixed_design_power_and_gamma_follow_node_physics(self):
        # At nominal operating points activities are node-invariant
        # (busy and makespan both scale by 1/freq), so fixed-design
        # power scales by exactly power_scale and Gamma by ser_scale.
        graph = mpeg2_decoder()
        mapping = Mapping.round_robin(graph, 4)
        points = {}
        for spec in ("45nm", "22nm", "8nm-cons"):
            node = TechNode.parse(spec)
            platform = platform_model("arm7").instantiate(4, tech_node=node)
            ser = node.scale_ser(SERModel())
            evaluator = MappingEvaluator(
                graph, platform, ser_model=ser, deadline_s=MPEG2_DEADLINE_S * 4
            )
            points[spec] = (node, evaluator.evaluate(mapping, (1, 1, 1, 1)))
        _, reference = points["45nm"]
        for spec in ("22nm", "8nm-cons"):
            node, point = points[spec]
            assert point.power_mw == pytest.approx(
                reference.power_mw * node.power_scale, rel=1e-9
            )
            assert point.expected_seus == pytest.approx(
                reference.expected_seus * node.ser_scale, rel=1e-9
            )
            assert point.makespan_s == pytest.approx(
                reference.makespan_s / node.freq_scale, rel=1e-9
            )
            assert point.activities == pytest.approx(
                reference.activities, rel=1e-12
            )

    def test_every_node_instantiates_every_preset(self):
        for name in platform_names():
            for feature in TECH_NODES:
                for variant in ("itrs", "cons"):
                    node = TechNode(feature_nm=feature, variant=variant)
                    platform = platform_model(name).instantiate(
                        4, tech_node=node
                    )
                    assert platform.num_cores == 4


# ---------------------------------------------------------------------------
# Heterogeneous paths against their own references
# ---------------------------------------------------------------------------


class TestHeterogeneousParity:
    def _biglittle(self, num_cores=4, tech_node=None):
        return platform_model("biglittle").instantiate(
            num_cores, tech_node=tech_node
        )

    def test_cycle_scales_and_type_layout(self):
        platform = self._biglittle(4)
        assert platform.is_heterogeneous
        assert not platform.uniform_unit_cycles
        assert platform.cycle_scales() == (0.8, 1.6, 0.8, 1.6)
        assert platform.type_of_core == (0, 1, 0, 1)

    def test_hetero_evaluate_matches_reference(self):
        rng = random.Random(0xE5)
        graph = streaming_pipeline_graph(3, 3, seed=11)
        platform = self._biglittle(4, tech_node=TechNode.parse("22nm"))
        evaluator = MappingEvaluator(
            graph, platform, deadline_s=MPEG2_DEADLINE_S * 8
        )
        for _ in range(10):
            mapping = _random_mapping(rng, graph, 4)
            scaling = platform.validate_assignment(
                tuple(
                    rng.randrange(1, platform.table_of(core).num_levels + 1)
                    for core in range(4)
                )
            )
            _assert_points_equal(
                evaluator.evaluate(mapping, scaling),
                evaluator.evaluate_reference(mapping, scaling),
            )

    def test_hetero_batch_matches_serial(self):
        rng = random.Random(0xF6)
        graph = tgff_random_graph(60, seed=9)
        platform = self._biglittle(4)
        serial = MappingEvaluator(graph, platform, deadline_s=MPEG2_DEADLINE_S * 8)
        batched = MappingEvaluator(graph, platform, deadline_s=MPEG2_DEADLINE_S * 8)
        mappings = [_random_mapping(rng, graph, 4) for _ in range(10)]
        scaling = platform.deepest_scaling_vector()
        batch_points = batched.evaluate_batch(mappings, scaling)
        for mapping, point in zip(mappings, batch_points):
            _assert_points_equal(serial.evaluate(mapping, scaling), point)

    def test_hetero_incremental_bounds_are_lower_bounds(self):
        rng = random.Random(0x17)
        graph = streaming_pipeline_graph(2, 4, seed=5)
        platform = self._biglittle(4)
        evaluator = MappingEvaluator(
            graph, platform, deadline_s=MPEG2_DEADLINE_S * 8
        )
        mapping = _random_mapping(rng, graph, 4)
        scaling = platform.deepest_scaling_vector()
        state = IncrementalMappingState(evaluator, mapping, scaling)
        names = [task.name for task in graph.tasks()]
        for _ in range(25):
            task = rng.choice(names)
            core = rng.randrange(4)
            estimate = state.estimate_move(task, core)
            truth = evaluator.evaluate(mapping.move(task, core), scaling)
            assert estimate.makespan_lb_s <= truth.makespan_s + 1e-12
            assert estimate.gamma_lb <= truth.expected_seus + 1e-9
            assert (
                estimate.register_bits_per_core
                == truth.register_bits_per_core
            )

    def test_platform_scaling_combinations_homogeneous_delegates(self):
        seed, twin = _seed_and_platform_pair(3)
        assert list(platform_scaling_combinations(twin)) == list(
            scaling_combinations(3, 3)
        )
        assert num_platform_scaling_combinations(twin) == num_scaling_combinations(
            3, 3
        )

    def test_platform_scaling_combinations_heterogeneous(self):
        platform = self._biglittle(4)
        vectors = list(platform_scaling_combinations(platform))
        assert len(vectors) == num_platform_scaling_combinations(platform)
        assert len(set(vectors)) == len(vectors)
        for vector in vectors:
            assert platform.validate_assignment(vector) == tuple(vector)
        # Group structure: big cores (0, 2) range over 4 levels,
        # little cores (1, 3) over 2.
        for core, depth in ((0, 4), (1, 2), (2, 4), (3, 2)):
            assert {v[core] for v in vectors} == set(range(1, depth + 1))


# ---------------------------------------------------------------------------
# Profile plumbing: fingerprint, store resume, CLI flags
# ---------------------------------------------------------------------------


class TestProfilePlumbing:
    def test_fingerprint_includes_platform_and_node(self):
        from repro.experiments.common import ExperimentProfile

        base = ExperimentProfile.smoke()
        assert base.platform == DEFAULT_PLATFORM
        assert base.tech_node == "45nm"
        hetero = base.with_platform(platform="biglittle")
        scaled = base.with_platform(tech_node="22nm")
        fingerprints = {
            base.result_fingerprint(),
            hetero.result_fingerprint(),
            scaled.result_fingerprint(),
        }
        assert len(fingerprints) == 3

    def test_fingerprint_canonicalizes_node_spelling(self):
        from repro.experiments.common import ExperimentProfile

        base = ExperimentProfile.smoke()
        spellings = [
            base.with_platform(tech_node=spec).result_fingerprint()
            for spec in ("45", "45nm", "45nm-itrs")
        ]
        assert len(set(spellings)) == 1

    def test_profile_rejects_unknown_platform_and_node(self):
        from repro.experiments.common import ExperimentProfile

        base = ExperimentProfile.smoke()
        with pytest.raises(ValueError):
            base.with_platform(platform="nonesuch")
        with pytest.raises(ValueError):
            base.with_platform(tech_node="7nm")

    def test_hetero_store_resume_round_trip(self, tmp_path):
        from repro.experiments.common import ExperimentProfile
        from repro.experiments.hetero import run_hetero
        from repro.experiments.runner import render_report

        profile = ExperimentProfile.smoke().with_store(str(tmp_path))
        kwargs = dict(
            platforms=("arm7",), tech_nodes=("45nm", "22nm"), num_cores=3
        )
        first = run_hetero(profile, **kwargs)
        records = (tmp_path / "hetero" / "records.jsonl").read_text()
        assert len(records.splitlines()) == 2
        resumed = run_hetero(
            ExperimentProfile.smoke().with_store(str(tmp_path), resume=True),
            **kwargs,
        )
        assert render_report("hetero", first, profile) == render_report(
            "hetero", resumed, profile
        )

    def test_store_resume_rejects_mismatched_node(self, tmp_path):
        from repro.experiments.common import ExperimentProfile
        from repro.experiments.hetero import run_hetero
        from repro.store.run_store import StoreMismatchError

        kwargs = dict(platforms=("arm7",), tech_nodes=("45nm",), num_cores=3)
        run_hetero(
            ExperimentProfile.smoke().with_store(str(tmp_path)), **kwargs
        )
        mismatched = (
            ExperimentProfile.smoke()
            .with_platform(tech_node="22nm")
            .with_store(str(tmp_path), resume=True)
        )
        with pytest.raises(StoreMismatchError):
            run_hetero(mismatched, **kwargs)

    def test_cli_flags_reach_profile(self):
        from repro import cli

        parser = cli.build_parser()
        args = parser.parse_args(
            [
                "experiment",
                "table2",
                "--platform",
                "biglittle",
                "--tech-node",
                "22nm-cons",
            ]
        )
        profile = cli._profile_from(args)
        assert profile.platform == "biglittle"
        assert profile.tech_node == "22nm-cons"
        # Defaults stay on the seed path.
        defaults = cli._profile_from(parser.parse_args(["experiment", "table2"]))
        assert defaults.platform == DEFAULT_PLATFORM
        assert defaults.tech_node == "45nm"

    def test_cli_rejects_bad_node(self):
        from repro import cli

        parser = cli.build_parser()
        args = parser.parse_args(
            ["experiment", "table2", "--tech-node", "7nm"]
        )
        with pytest.raises(SystemExit):
            cli._profile_from(args)


# ---------------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------------


class TestGenerators:
    def test_streaming_pipeline_shape_and_determinism(self):
        graph = streaming_pipeline_graph(3, 4, seed=2)
        # split0 + per stage (parallelism workers + merger).
        assert len(list(graph.tasks())) == 1 + 3 * (4 + 1)
        again = streaming_pipeline_graph(3, 4, seed=2)
        assert {t.name: t.cycles for t in graph.tasks()} == {
            t.name: t.cycles for t in again.tasks()
        }
        other = streaming_pipeline_graph(3, 4, seed=3)
        assert {t.name: t.cycles for t in graph.tasks()} != {
            t.name: t.cycles for t in other.tasks()
        }

    def test_tgff_random_graph_scales_and_is_deterministic(self):
        graph = tgff_random_graph(500, seed=4)
        tasks = list(graph.tasks())
        assert len(tasks) == 500
        again = tgff_random_graph(500, seed=4)
        assert {t.name: t.cycles for t in tasks} == {
            t.name: t.cycles for t in again.tasks()
        }
        # Weights stay inside the configured log-uniform range.
        for task in tasks:
            assert 50_000 * 0.99 <= task.cycles <= 2_000_000 * 1.01

    def test_generators_schedule_on_hetero_platform(self):
        graph = tgff_random_graph(120, seed=6)
        platform = platform_model("biglittle").instantiate(4)
        scheduler = ListScheduler.for_platform(graph, platform)
        schedule = scheduler.schedule(Mapping.round_robin(graph, 4))
        assert schedule.makespan_s() > 0.0
        assert list(schedule) == list(
            scheduler.schedule_reference(Mapping.round_robin(graph, 4))
        )
