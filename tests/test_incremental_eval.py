"""Incremental evaluation: exactness, bound soundness and screening.

``IncrementalMappingState`` promises two exact quantities (per-core
register bits and Eq. 7 cycles, maintained under move/swap deltas) and
two certified lower bounds (makespan, Gamma).  The exact parts must
match the seed metric functions bit-for-bit after arbitrary move
sequences; the bounds must never exceed the list-scheduled truth.
Screening in the mappers is opt-in and must stay deterministic and
feasible-preserving.
"""

import random

import pytest

from repro.arch import MPSoC
from repro.mapping import (
    REBUILD_TASK_THRESHOLD,
    IncrementalMappingState,
    Mapping,
    MappingEvaluator,
    MoveEstimate,
    screen_lower_bound,
)
from repro.mapping.metrics import (
    per_core_execution_cycles,
    per_core_register_bits,
)
from repro.optim import (
    AnnealingConfig,
    MakespanObjective,
    OptimizedMappingSearch,
    RegisterTimeProductObjective,
    RegisterUsageObjective,
    SEUObjective,
    SimulatedAnnealingMapper,
)
from repro.optim.initial_mapping import initial_sea_mapping
from repro.taskgraph import RandomGraphConfig, mpeg2_decoder, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


def _make_case(trial, rng):
    if trial % 2 == 0:
        graph = mpeg2_decoder()
    else:
        graph = random_task_graph(
            RandomGraphConfig(num_tasks=rng.randrange(6, 25)), seed=trial
        )
    num_cores = rng.randrange(2, 5)
    platform = MPSoC.paper_reference(num_cores)
    comm_model = "dedicated" if trial % 3 else "shared-bus"
    evaluator = MappingEvaluator(
        graph, platform, deadline_s=MPEG2_DEADLINE_S, comm_model=comm_model
    )
    mapping = Mapping(
        {name: rng.randrange(num_cores) for name in graph.task_names()}, num_cores
    )
    scaling = tuple(rng.randrange(1, 4) for _ in range(num_cores))
    return graph, evaluator, mapping, scaling, num_cores


class TestIncrementalExactness:
    def test_moves_and_swaps_track_seed_metrics(self):
        rng = random.Random(42)
        for trial in range(25):
            graph, evaluator, mapping, scaling, num_cores = _make_case(trial, rng)
            names = list(graph.task_names())
            state = IncrementalMappingState(evaluator, mapping, scaling)
            for _ in range(25):
                if rng.random() < 0.5:
                    task = rng.choice(names)
                    core = rng.randrange(num_cores)
                    estimate = state.estimate_move(task, core)
                    mapping = mapping.move(task, core)
                    state.apply_move(task, core)
                else:
                    task_a, task_b = rng.sample(names, 2)
                    estimate = state.estimate_swap(task_a, task_b)
                    mapping = mapping.swap(task_a, task_b)
                    state.apply_swap(task_a, task_b)
                # Exact parity with the seed metric functions.
                assert state.register_bits_per_core == per_core_register_bits(
                    graph, mapping
                )
                assert state.busy_cycles_per_core == per_core_execution_cycles(
                    graph, mapping
                )
                # The committed state matches its own preview.
                assert estimate.register_bits_per_core == state.register_bits_per_core
                assert estimate.busy_cycles_per_core == state.busy_cycles_per_core

    def test_bounds_never_exceed_scheduled_truth(self):
        rng = random.Random(7)
        for trial in range(15):
            graph, evaluator, mapping, scaling, num_cores = _make_case(trial, rng)
            names = list(graph.task_names())
            state = IncrementalMappingState(evaluator, mapping, scaling)
            for _ in range(10):
                task = rng.choice(names)
                core = rng.randrange(num_cores)
                estimate = state.estimate_move(task, core)
                mapping = mapping.move(task, core)
                state.apply_move(task, core)
                point = evaluator.evaluate(mapping, scaling)
                assert estimate.makespan_lb_s <= point.makespan_s + 1e-12
                assert estimate.gamma_lb <= point.expected_seus * (1 + 1e-12) + 1e-12

    def test_estimate_mapping_matches_explicit_moves(self, mpeg2):
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(mpeg2, platform, deadline_s=MPEG2_DEADLINE_S)
        mapping = Mapping.round_robin(mpeg2, 4)
        state = IncrementalMappingState(evaluator, mapping, (2, 2, 2, 2))
        neighbor = mapping.swap("t1", "t2")
        via_mapping = state.estimate_mapping(neighbor)
        via_swap = state.estimate_swap("t1", "t2")
        assert via_mapping == via_swap

    def test_rebuild_equals_incremental_path(self, mpeg2):
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(mpeg2, platform, deadline_s=MPEG2_DEADLINE_S)
        mapping = Mapping.round_robin(mpeg2, 4)
        state = IncrementalMappingState(evaluator, mapping, (1, 1, 1, 1))
        mapping = mapping.move("t5", 0).move("t7", 2)
        state.apply_move("t5", 0)
        state.apply_move("t7", 2)
        rebuilt = IncrementalMappingState(evaluator, mapping, (1, 1, 1, 1))
        assert state.register_bits_per_core == rebuilt.register_bits_per_core
        assert state.busy_cycles_per_core == rebuilt.busy_cycles_per_core

    def test_noop_move_returns_current_estimate(self, mpeg2):
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(mpeg2, platform, deadline_s=MPEG2_DEADLINE_S)
        mapping = Mapping.round_robin(mpeg2, 4)
        state = IncrementalMappingState(evaluator, mapping, (1, 1, 1, 1))
        current_core = mapping.core_of("t3")
        assert state.estimate_move("t3", current_core) == state.estimate_current()

    def test_rejects_bad_core_index(self, mpeg2):
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(mpeg2, platform, deadline_s=MPEG2_DEADLINE_S)
        state = IncrementalMappingState(
            evaluator, Mapping.round_robin(mpeg2, 4), (1, 1, 1, 1)
        )
        with pytest.raises(ValueError, match="core index"):
            state.estimate_move("t1", 7)

    def test_index_api_matches_name_api(self, mpeg2):
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(mpeg2, platform, deadline_s=MPEG2_DEADLINE_S)
        mapping = Mapping.round_robin(mpeg2, 4)
        names = mpeg2.task_names()
        by_name = IncrementalMappingState(evaluator, mapping, (2, 2, 2, 2))
        by_index = IncrementalMappingState(evaluator, mapping, (2, 2, 2, 2))
        assert by_index.estimate_move_index(3, 1) == by_name.estimate_move(
            names[3], 1
        )
        assert by_index.estimate_swap_index(2, 7) == by_name.estimate_swap(
            names[2], names[7]
        )
        by_name.apply_move(names[3], 1)
        by_index.apply_move_index(3, 1)
        by_name.apply_swap(names[2], names[7])
        by_index.apply_swap_index(2, 7)
        assert by_index.register_bits_per_core == by_name.register_bits_per_core
        assert by_index.busy_cycles_per_core == by_name.busy_cycles_per_core


class TestApplyMappingBranches:
    """apply_mapping: exact on both the delta and the rebuild branch.

    The crossover is :data:`REBUILD_TASK_THRESHOLD` — up to that many
    moved tasks commit as a delta, anything wider re-anchors with a
    full rebuild.  Both must land on the identical state.
    """

    @pytest.mark.parametrize(
        "moved_tasks",
        [1, 2, REBUILD_TASK_THRESHOLD, REBUILD_TASK_THRESHOLD + 1, 9],
    )
    def test_both_branches_match_fresh_state(self, moved_tasks):
        graph = random_task_graph(RandomGraphConfig(num_tasks=20), seed=8)
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(graph, platform, deadline_s=MPEG2_DEADLINE_S)
        mapping = Mapping.round_robin(graph, 4)
        state = IncrementalMappingState(evaluator, mapping, (2, 2, 2, 2))
        names = list(graph.task_names())
        neighbor = mapping
        for offset in range(moved_tasks):
            task = names[offset * 2]  # distinct tasks
            neighbor = neighbor.move(task, (mapping.core_of(task) + 1) % 4)
        assert len(state.moved_tasks(neighbor)) == moved_tasks
        state.apply_mapping(neighbor)
        fresh = IncrementalMappingState(evaluator, neighbor, (2, 2, 2, 2))
        assert state.register_bits_per_core == fresh.register_bits_per_core
        assert state.busy_cycles_per_core == fresh.busy_cycles_per_core
        assert state.estimate_current() == fresh.estimate_current()

    def test_threshold_is_the_documented_crossover(self):
        # Guard the constant itself: the delta path must accept
        # exactly REBUILD_TASK_THRESHOLD moved tasks (a search commit
        # is at most a swap = 2, well inside).
        assert REBUILD_TASK_THRESHOLD >= 2

    def test_noop_apply_mapping_returns_early(self, mpeg2):
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(mpeg2, platform, deadline_s=MPEG2_DEADLINE_S)
        mapping = Mapping.round_robin(mpeg2, 4)
        state = IncrementalMappingState(evaluator, mapping, (2, 2, 2, 2))
        before = state.estimate_current()
        state.apply_mapping(mapping)
        assert state.estimate_current() == before


class TestScreenLowerBound:
    def _estimate(self):
        return MoveEstimate(
            register_bits_per_core=(100, 50),
            register_bits_total=150,
            busy_cycles_per_core=(1000, 2000),
            makespan_lb_s=0.25,
            gamma_lb=3.5,
            feasible_possible=True,
        )

    def test_known_objectives(self):
        estimate = self._estimate()
        assert screen_lower_bound(RegisterUsageObjective(), estimate) == 150.0
        assert screen_lower_bound(MakespanObjective(), estimate) == 0.25
        assert screen_lower_bound(SEUObjective(), estimate) == 3.5
        assert screen_lower_bound(
            RegisterTimeProductObjective(), estimate
        ) == pytest.approx(0.25 * 150)

    def test_unknown_objective_returns_none(self):
        assert screen_lower_bound(lambda point: 1.0, self._estimate()) is None


class TestScreenedSearch:
    def test_screened_annealer_is_deterministic_and_feasible(self, mpeg2):
        platform = MPSoC.paper_reference(4)

        def run():
            evaluator = MappingEvaluator(
                mpeg2, platform, deadline_s=MPEG2_DEADLINE_S
            )
            mapper = SimulatedAnnealingMapper(
                evaluator,
                SEUObjective(),
                config=AnnealingConfig(max_iterations=800),
                seed=5,
                require_all_cores=True,
                screening=True,
            )
            point = mapper.run(Mapping.round_robin(mpeg2, 4), (2, 2, 2, 2))
            return point, mapper.screened_moves

        first_point, first_screened = run()
        second_point, second_screened = run()
        assert first_point.meets_deadline
        assert first_point.mapping == second_point.mapping
        assert first_point.expected_seus == second_point.expected_seus
        assert first_screened == second_screened

    def test_screened_walk_is_deterministic_and_feasible(self, mpeg2):
        platform = MPSoC.paper_reference(4)

        def run():
            evaluator = MappingEvaluator(
                mpeg2, platform, deadline_s=MPEG2_DEADLINE_S
            )
            initial = initial_sea_mapping(
                mpeg2, platform, deadline_s=MPEG2_DEADLINE_S, scaling=(2, 2, 2, 2)
            )
            search = OptimizedMappingSearch(
                evaluator, max_iterations=800, seed=5, screen_moves=True
            )
            result = search.run(initial, (2, 2, 2, 2))
            return result, search.screened_moves

        first, first_screened = run()
        second, second_screened = run()
        assert first.feasible
        assert first.best.mapping == second.best.mapping
        assert first_screened == second_screened

    def test_screened_annealer_matches_unscreened_quality_band(self, mpeg2):
        # Screening changes trajectories, not correctness: the result
        # must still be feasible and in the same quality ballpark.
        platform = MPSoC.paper_reference(4)
        results = {}
        for screening in (False, True):
            evaluator = MappingEvaluator(
                mpeg2, platform, deadline_s=MPEG2_DEADLINE_S
            )
            mapper = SimulatedAnnealingMapper(
                evaluator,
                SEUObjective(),
                config=AnnealingConfig(max_iterations=1500),
                seed=0,
                require_all_cores=True,
                screening=screening,
            )
            results[screening] = mapper.run(
                Mapping.round_robin(mpeg2, 4), (2, 2, 2, 2)
            )
        assert results[True].meets_deadline
        assert results[True].expected_seus <= results[False].expected_seus * 1.5
