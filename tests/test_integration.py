"""Integration tests across modules: the Fig. 8 worked example, the
fault-injection / analytic agreement, and a small end-to-end flow."""

import pytest

from repro import quick_optimize
from repro.faults import FaultInjector
from repro.mapping import Mapping, MappingEvaluator
from repro.optim import (
    OptimizedMappingSearch,
    initial_sea_mapping,
)
from repro.sim import MPSoCSimulator
from repro.taskgraph import pipeline_graph
from repro.taskgraph.examples import FIG8_DEADLINE_S, FIG8_SCALING
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


class TestFig8WorkedExample:
    """The paper's worked example: 6 tasks, 3 cores, s=(1,2,2), 75 ms."""

    def test_initial_mapping_populates_all_cores(self, fig8, platform3):
        mapping = initial_sea_mapping(
            fig8, platform3, FIG8_DEADLINE_S, scaling=FIG8_SCALING
        )
        assert len(mapping.used_cores()) == 3

    def test_stage2_meets_the_75ms_deadline(self, fig8, fig8_evaluator, platform3):
        # The paper's walk-through: the initial mapping misses the
        # deadline at the chosen scalings and OptimizedMapping repairs
        # it with task movements.
        initial = initial_sea_mapping(
            fig8, platform3, FIG8_DEADLINE_S, scaling=FIG8_SCALING
        )
        result = OptimizedMappingSearch(
            fig8_evaluator, max_iterations=600, seed=0
        ).run(initial, FIG8_SCALING)
        assert result.feasible
        assert result.best.makespan_s <= FIG8_DEADLINE_S + 1e-9

    def test_optimized_gamma_not_worse_than_alternatives(self, fig8, fig8_evaluator):
        # The stage-2 result beats (or ties) naive mappings on SEUs
        # among deadline-feasible designs.
        initial = initial_sea_mapping(
            fig8, fig8_evaluator.platform, FIG8_DEADLINE_S, scaling=FIG8_SCALING
        )
        best = OptimizedMappingSearch(fig8_evaluator, max_iterations=600, seed=1).run(
            initial, FIG8_SCALING
        ).best
        rr = fig8_evaluator.evaluate(Mapping.round_robin(fig8, 3), FIG8_SCALING)
        if rr.meets_deadline:
            assert best.expected_seus <= rr.expected_seus + 1e-9

    def test_exhaustive_optimality_on_fig8(self, fig8, fig8_evaluator):
        # The example is small enough (S(6,3)=90 mappings) to brute
        # force: stage 2 should find the true optimum or close to it.
        from repro.mapping.enumeration import enumerate_mappings

        feasible = []
        for mapping in enumerate_mappings(fig8, 3):
            point = fig8_evaluator.evaluate(mapping, FIG8_SCALING)
            if point.meets_deadline:
                feasible.append(point)
        assert feasible, "the example must admit feasible mappings"
        true_best = min(point.expected_seus for point in feasible)

        initial = initial_sea_mapping(
            fig8, fig8_evaluator.platform, FIG8_DEADLINE_S, scaling=FIG8_SCALING
        )
        found = OptimizedMappingSearch(
            fig8_evaluator, max_iterations=1500, seed=2
        ).run(initial, FIG8_SCALING).best
        assert found.expected_seus <= true_best * 1.05


class TestInjectionMatchesAnalytic:
    """The paper's validation: fault injection agrees with Eq. (3)."""

    @pytest.mark.parametrize("scaling", [(1, 1, 1, 1), (2, 2, 3, 2)])
    def test_mpeg2_injection(self, mpeg2, platform4, rr_mapping4, scaling):
        simulator = MPSoCSimulator(mpeg2, platform4, scaling=scaling)
        result = simulator.run(rr_mapping4)
        voltages = [
            platform4.scaling_table.vdd_v(coefficient) for coefficient in scaling
        ]
        campaign = FaultInjector(seed=0).inject(result, voltages, runs=20)
        evaluator = MappingEvaluator(mpeg2, platform4)
        analytic = evaluator.evaluate(rr_mapping4, scaling).expected_seus
        assert campaign.expected_seus / 20 == pytest.approx(analytic, rel=1e-3)
        assert campaign.mean_seus_per_run == pytest.approx(analytic, rel=0.05)


class TestQuickOptimize:
    def test_end_to_end_pipeline_app(self):
        graph = pipeline_graph(8, task_cycles=50_000_000, comm_cycles=5_000_000)
        outcome = quick_optimize(
            graph,
            num_cores=3,
            deadline_s=5.0,
            search_iterations=200,
            seed=0,
        )
        assert outcome.best is not None
        best = outcome.best
        assert best.makespan_s <= 5.0
        best.mapping.validate_against(graph)
        assert len(best.scaling) == 3

    def test_mpeg2_end_to_end(self, mpeg2):
        outcome = quick_optimize(
            mpeg2,
            num_cores=4,
            deadline_s=MPEG2_DEADLINE_S,
            search_iterations=300,
            seed=1,
        )
        assert outcome.best is not None
        assert outcome.best.makespan_s <= MPEG2_DEADLINE_S
        # The selected design is never the most expensive assessment.
        powers = [record.point.power_mw for record in outcome.assessments]
        assert outcome.best.power_mw <= max(powers)

    def test_two_level_platform(self, mpeg2):
        outcome = quick_optimize(
            mpeg2,
            num_cores=4,
            deadline_s=MPEG2_DEADLINE_S,
            num_scaling_levels=2,
            search_iterations=150,
            seed=2,
        )
        assert outcome.best is not None
        assert all(1 <= s <= 2 for s in outcome.best.scaling)


class TestCrossModelConsistency:
    def test_simulator_and_evaluator_agree_on_makespan(
        self, mpeg2, platform4, rr_mapping4
    ):
        evaluator = MappingEvaluator(mpeg2, platform4)
        for scaling in [(1, 1, 1, 1), (3, 2, 1, 2)]:
            point = evaluator.evaluate(rr_mapping4, scaling)
            simulated = MPSoCSimulator(mpeg2, platform4, scaling=scaling).run(
                rr_mapping4
            )
            assert simulated.makespan_s == pytest.approx(point.makespan_s)

    def test_power_uses_schedule_activities(self, mpeg2, platform4):
        # An all-on-one-core mapping leaves three cores idle: its power
        # must be well below the all-busy bound.
        from repro.arch import PowerModel

        evaluator = MappingEvaluator(mpeg2, platform4)
        localized = Mapping.all_on_core(mpeg2, 4, 0)
        point = evaluator.evaluate(localized, (1, 1, 1, 1))
        all_busy = PowerModel().platform_power_mw(platform4, scaling=(1, 1, 1, 1))
        assert point.power_mw < all_busy / 2
