"""Tests for mapping enumeration and sampling (the Fig. 3 machinery)."""

import pytest

from repro.mapping import Mapping
from repro.mapping.enumeration import (
    canonicalize,
    contiguous_mappings,
    enumerate_mappings,
    num_distinct_mappings,
    sample_mappings,
    stratified_mappings,
)
from repro.taskgraph import pipeline_graph


class TestCounting:
    def test_stirling_small_cases(self):
        # S(4, 2) = 7, S(5, 3) = 25.
        assert num_distinct_mappings(4, 2) == 7
        assert num_distinct_mappings(5, 3) == 25

    def test_all_cores_not_required(self):
        # Sum of S(3, k) for k=1..2 = 1 + 3 = 4.
        assert num_distinct_mappings(3, 2, require_all_cores=False) == 4

    def test_single_core(self):
        assert num_distinct_mappings(5, 1) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            num_distinct_mappings(0, 1)


class TestEnumeration:
    def test_count_matches_stirling(self):
        graph = pipeline_graph(5)
        mappings = list(enumerate_mappings(graph, 3))
        assert len(mappings) == num_distinct_mappings(5, 3)

    def test_all_distinct(self):
        graph = pipeline_graph(5)
        mappings = list(enumerate_mappings(graph, 3))
        assert len(set(mappings)) == len(mappings)

    def test_all_cores_used(self):
        graph = pipeline_graph(5)
        for mapping in enumerate_mappings(graph, 3):
            assert len(mapping.used_cores()) == 3

    def test_without_all_cores_requirement(self):
        graph = pipeline_graph(3)
        mappings = list(enumerate_mappings(graph, 2, require_all_cores=False))
        assert len(mappings) == 4

    def test_limit(self):
        graph = pipeline_graph(6)
        assert len(list(enumerate_mappings(graph, 3, limit=5))) == 5

    def test_canonical_first_task_on_core_zero(self):
        graph = pipeline_graph(5)
        first = graph.topological_order()[0]
        for mapping in enumerate_mappings(graph, 3):
            assert mapping.core_of(first) == 0


class TestCanonicalize:
    def test_identity_on_canonical(self):
        graph = pipeline_graph(3)
        m = Mapping({"t1": 0, "t2": 1, "t3": 2}, 3)
        assert canonicalize(m, graph) == m

    def test_relabels_by_first_appearance(self):
        graph = pipeline_graph(3)
        m = Mapping({"t1": 2, "t2": 0, "t3": 2}, 3)
        canonical = canonicalize(m, graph)
        assert canonical.core_of("t1") == 0
        assert canonical.core_of("t2") == 1
        assert canonical.core_of("t3") == 0

    def test_permuted_mappings_canonicalize_equal(self):
        graph = pipeline_graph(4)
        a = Mapping({"t1": 0, "t2": 1, "t3": 0, "t4": 1}, 2)
        b = Mapping({"t1": 1, "t2": 0, "t3": 1, "t4": 0}, 2)
        assert canonicalize(a, graph) == canonicalize(b, graph)


class TestSampling:
    def test_requested_count(self):
        graph = pipeline_graph(8)
        samples = sample_mappings(graph, 3, 25, seed=1)
        assert len(samples) == 25
        assert len(set(samples)) == 25

    def test_reproducible(self):
        graph = pipeline_graph(8)
        assert sample_mappings(graph, 3, 10, seed=5) == sample_mappings(
            graph, 3, 10, seed=5
        )

    def test_small_space_falls_back_to_enumeration(self):
        graph = pipeline_graph(4)
        samples = sample_mappings(graph, 2, 1000, seed=0)
        assert len(samples) == num_distinct_mappings(4, 2)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            sample_mappings(pipeline_graph(4), 2, 0)


class TestContiguousAndStratified:
    def test_contiguous_blocks_are_contiguous(self):
        graph = pipeline_graph(8)
        order = graph.topological_order()
        for mapping in contiguous_mappings(graph, 3, 10, seed=2):
            cores = [mapping.core_of(name) for name in order]
            # Core index never decreases along the topological order.
            assert cores == sorted(cores)

    def test_contiguous_needs_enough_tasks(self):
        with pytest.raises(ValueError):
            contiguous_mappings(pipeline_graph(2), 3, 5)

    def test_stratified_mixes_families(self):
        graph = pipeline_graph(10)
        samples = stratified_mappings(graph, 3, 40, seed=3)
        assert len(samples) >= 30  # dedup may drop a few
        assert len(set(samples)) == len(samples)

    def test_stratified_reproducible(self):
        graph = pipeline_graph(10)
        assert stratified_mappings(graph, 3, 20, seed=4) == stratified_mappings(
            graph, 3, 20, seed=4
        )
