"""Tests for the Mapping value type."""

import pytest

from repro.mapping import Mapping


class TestConstruction:
    def test_basic(self):
        m = Mapping({"a": 0, "b": 1}, num_cores=2)
        assert m.core_of("a") == 0
        assert m.core_of("b") == 1
        assert m.num_tasks == 2
        assert m.num_cores == 2

    def test_rejects_out_of_range_core(self):
        with pytest.raises(ValueError):
            Mapping({"a": 2}, num_cores=2)
        with pytest.raises(ValueError):
            Mapping({"a": -1}, num_cores=2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Mapping({}, num_cores=2)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            Mapping({"a": 0}, num_cores=0)

    def test_from_groups(self):
        m = Mapping.from_groups([["a", "b"], ["c"]])
        assert m.tasks_on(0) == ("a", "b")
        assert m.tasks_on(1) == ("c",)

    def test_from_groups_duplicate_task(self):
        with pytest.raises(ValueError):
            Mapping.from_groups([["a"], ["a"]])

    def test_round_robin(self, pipeline6):
        m = Mapping.round_robin(pipeline6, 3)
        assert m.core_of("t1") == 0
        assert m.core_of("t2") == 1
        assert m.core_of("t3") == 2
        assert m.core_of("t4") == 0

    def test_all_on_core(self, pipeline6):
        m = Mapping.all_on_core(pipeline6, 4, core_index=2)
        assert set(m.used_cores()) == {2}


class TestValueSemantics:
    def test_equality_order_independent(self):
        a = Mapping({"x": 0, "y": 1}, 2)
        b = Mapping({"y": 1, "x": 0}, 2)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_core_count(self):
        assert Mapping({"x": 0}, 1) != Mapping({"x": 0}, 2)

    def test_usable_in_sets(self):
        mappings = {Mapping({"x": 0}, 2), Mapping({"x": 0}, 2), Mapping({"x": 1}, 2)}
        assert len(mappings) == 2


class TestQueries:
    def test_core_groups(self):
        m = Mapping({"a": 0, "b": 1, "c": 0}, 3)
        assert m.core_groups() == (("a", "c"), ("b",), ())

    def test_used_cores(self):
        m = Mapping({"a": 0, "b": 2}, 3)
        assert m.used_cores() == (0, 2)

    def test_same_core(self):
        m = Mapping({"a": 0, "b": 0, "c": 1}, 2)
        assert m.same_core("a", "b")
        assert not m.same_core("a", "c")

    def test_unknown_task(self):
        m = Mapping({"a": 0}, 1)
        with pytest.raises(KeyError):
            m.core_of("ghost")

    def test_tasks_on_invalid_core(self):
        m = Mapping({"a": 0}, 1)
        with pytest.raises(ValueError):
            m.tasks_on(5)

    def test_as_dict_is_copy(self):
        m = Mapping({"a": 0}, 1)
        d = m.as_dict()
        d["a"] = 99
        assert m.core_of("a") == 0

    def test_container_protocol(self):
        m = Mapping({"a": 0, "b": 1}, 2)
        assert "a" in m
        assert len(m) == 2
        assert set(iter(m)) == {"a", "b"}


class TestNeighbours:
    def test_move_returns_new_mapping(self):
        m = Mapping({"a": 0, "b": 1}, 2)
        moved = m.move("a", 1)
        assert moved.core_of("a") == 1
        assert m.core_of("a") == 0  # original untouched

    def test_swap(self):
        m = Mapping({"a": 0, "b": 1}, 2)
        swapped = m.swap("a", "b")
        assert swapped.core_of("a") == 1
        assert swapped.core_of("b") == 0

    def test_swap_is_involution(self):
        m = Mapping({"a": 0, "b": 1, "c": 1}, 3)
        assert m.swap("a", "b").swap("a", "b") == m

    def test_move_unknown_task(self):
        with pytest.raises(KeyError):
            Mapping({"a": 0}, 2).move("ghost", 1)


class TestValidation:
    def test_validate_against_graph(self, pipeline6):
        good = Mapping.round_robin(pipeline6, 2)
        good.validate_against(pipeline6)

    def test_missing_task_detected(self, pipeline6):
        partial = Mapping({"t1": 0}, 2)
        with pytest.raises(ValueError, match="misses"):
            partial.validate_against(pipeline6)

    def test_extra_task_detected(self, pipeline6):
        assignment = {name: 0 for name in pipeline6.task_names()}
        assignment["ghost"] = 1
        with pytest.raises(ValueError, match="unknown"):
            Mapping(assignment, 2).validate_against(pipeline6)
