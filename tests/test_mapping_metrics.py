"""Tests for the Eq. (3)-(8) metrics and the design-point evaluator."""

import pytest

from repro.mapping import Mapping, MappingEvaluator
from repro.mapping.metrics import (
    core_execution_cycles,
    core_register_bits,
    expected_seus,
    per_core_execution_cycles,
    per_core_register_bits,
    pooled_makespan_s,
    total_register_bits,
)
from repro.taskgraph import TaskGraph
from repro.taskgraph.registers import Register


def shared_pair_graph() -> TaskGraph:
    """a -> b sharing one 100-bit block, with private blocks and comm."""
    g = TaskGraph(name="pair")
    shared = Register("shared", 100)
    g.add_task("a", 1000, registers=[shared], private_register_bits=10)
    g.add_task("b", 2000, registers=[shared], private_register_bits=20)
    g.add_edge("a", "b", 500)
    return g


class TestRegisterMetrics:
    def test_co_located_counts_shared_once(self):
        g = shared_pair_graph()
        together = Mapping({"a": 0, "b": 0}, 2)
        assert core_register_bits(g, together, 0) == 130
        assert core_register_bits(g, together, 1) == 0
        assert total_register_bits(g, together) == 130

    def test_split_duplicates_shared(self):
        g = shared_pair_graph()
        split = Mapping({"a": 0, "b": 1}, 2)
        assert per_core_register_bits(g, split) == (110, 120)
        assert total_register_bits(g, split) == 230

    def test_duplication_delta_is_shared_size(self):
        # The Section III mechanism: split - together == shared bits.
        g = shared_pair_graph()
        split = total_register_bits(g, Mapping({"a": 0, "b": 1}, 2))
        together = total_register_bits(g, Mapping({"a": 0, "b": 0}, 2))
        assert split - together == 100


class TestExecutionCycles:
    def test_same_core_no_comm(self):
        g = shared_pair_graph()
        together = Mapping({"a": 0, "b": 0}, 2)
        assert core_execution_cycles(g, together, 0) == 3000

    def test_cross_core_charges_receive(self):
        g = shared_pair_graph()
        split = Mapping({"a": 0, "b": 1}, 2)
        assert per_core_execution_cycles(g, split) == (1000, 2500)

    def test_pooled_makespan(self):
        g = shared_pair_graph()
        split = Mapping({"a": 0, "b": 1}, 2)
        # 3500 total cycles over 2 cores at 1 MHz each.
        assert pooled_makespan_s(g, split, [1e6, 1e6]) == pytest.approx(3500 / 2e6)

    def test_pooled_makespan_validates(self):
        g = shared_pair_graph()
        split = Mapping({"a": 0, "b": 1}, 2)
        with pytest.raises(ValueError):
            pooled_makespan_s(g, split, [1e6])


class TestExpectedSeus:
    def test_formula(self):
        # Gamma = sum R_i * T_i * lambda_i.
        assert expected_seus([100, 200], [10, 20], [0.1, 0.01]) == pytest.approx(
            100 * 10 * 0.1 + 200 * 20 * 0.01
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            expected_seus([1], [1, 2], [0.1, 0.1])

    def test_zero_everything(self):
        assert expected_seus([], [], []) == 0.0


class TestMappingEvaluator:
    def test_design_point_fields(self, mpeg2_evaluator, rr_mapping4):
        point = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        assert point.power_mw > 0
        assert point.register_bits_total == sum(point.register_bits_per_core)
        assert point.makespan_s > 0
        assert point.expected_seus > 0
        assert len(point.activities) == 4
        assert all(0 <= a <= 1 for a in point.activities)
        assert point.meets_deadline is not None
        assert point.schedule is not None

    def test_gamma_scale_invariant_in_frequency(self, mpeg2_evaluator, rr_mapping4):
        # Full-window exposure in own cycles: Gamma depends on scaling
        # only through lambda(V), so uniform rescaling multiplies Gamma
        # by the lambda ratio (2.5x at s=2 per the Fig. 3 calibration).
        p1 = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        p2 = mpeg2_evaluator.evaluate(rr_mapping4, (2, 2, 2, 2))
        assert p2.expected_seus / p1.expected_seus == pytest.approx(2.5, rel=0.02)

    def test_makespan_doubles_at_half_speed(self, mpeg2_evaluator, rr_mapping4):
        p1 = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        p2 = mpeg2_evaluator.evaluate(rr_mapping4, (2, 2, 2, 2))
        assert p2.makespan_s / p1.makespan_s == pytest.approx(2.0, rel=1e-6)

    def test_deadline_flag(self, mpeg2_evaluator, rr_mapping4):
        fast = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        slow = mpeg2_evaluator.evaluate(rr_mapping4, (3, 3, 3, 3))
        assert fast.meets_deadline is True
        assert slow.meets_deadline is False

    def test_cache_hit_returns_same_object(self, mpeg2_evaluator, rr_mapping4):
        a = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        b = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        assert a is b
        assert mpeg2_evaluator.evaluations == 2
        assert mpeg2_evaluator.cache_entries >= 1

    def test_clear_cache(self, mpeg2_evaluator, rr_mapping4):
        mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        mpeg2_evaluator.clear_cache()
        assert mpeg2_evaluator.cache_entries == 0

    def test_hit_miss_counters(self, mpeg2_evaluator, rr_mapping4):
        mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        mpeg2_evaluator.evaluate(rr_mapping4, (2, 2, 2, 2))
        assert mpeg2_evaluator.cache_hits == 1
        assert mpeg2_evaluator.cache_misses == 2
        info = mpeg2_evaluator.cache_info
        assert info["hits"] == 1 and info["misses"] == 2
        assert info["entries"] == 2

    def test_cache_key_is_canonical_across_equal_mappings(
        self, mpeg2, mpeg2_evaluator
    ):
        names = list(mpeg2.task_names())
        forward = Mapping({name: i % 4 for i, name in enumerate(names)}, 4)
        backward = Mapping(
            {name: i % 4 for i, name in reversed(list(enumerate(names)))}, 4
        )
        first = mpeg2_evaluator.evaluate(forward, (1, 1, 1, 1))
        second = mpeg2_evaluator.evaluate(backward, (1, 1, 1, 1))
        assert first is second  # same canonical signature -> cache hit
        assert mpeg2_evaluator.cache_hits == 1

    def test_cache_hit_cannot_mask_core_count_mismatch(self, mpeg2, platform4):
        # Regression: same per-task assignment, wider num_cores — the
        # cache must miss so the scheduler's width check still fires.
        evaluator = MappingEvaluator(mpeg2, platform4)
        assignment = {name: i % 4 for i, name in enumerate(mpeg2.task_names())}
        evaluator.evaluate(Mapping(assignment, 4), (1, 1, 1, 1))
        with pytest.raises(ValueError, match="cores"):
            evaluator.evaluate(Mapping(assignment, 8), (1, 1, 1, 1))

    def test_true_lru_eviction(self, mpeg2, platform4):
        evaluator = MappingEvaluator(mpeg2, platform4, cache_size=2)
        mapping = Mapping.round_robin(mpeg2, 4)
        evaluator.evaluate(mapping, (1, 1, 1, 1))  # A
        evaluator.evaluate(mapping, (2, 2, 2, 2))  # B
        evaluator.evaluate(mapping, (1, 1, 1, 1))  # touch A -> B is now LRU
        evaluator.evaluate(mapping, (3, 3, 3, 3))  # C evicts B, not A
        assert evaluator.cache_entries == 2
        hits_before = evaluator.cache_hits
        evaluator.evaluate(mapping, (1, 1, 1, 1))  # A still cached
        assert evaluator.cache_hits == hits_before + 1
        misses_before = evaluator.cache_misses
        evaluator.evaluate(mapping, (2, 2, 2, 2))  # B was evicted
        assert evaluator.cache_misses == misses_before + 1

    def test_cache_never_exceeds_size(self, mpeg2, platform4):
        evaluator = MappingEvaluator(mpeg2, platform4, cache_size=3)
        mapping = Mapping.round_robin(mpeg2, 4)
        for level in (1, 2, 3):
            for uniform in ((level,) * 4, (level, 1, level, 1)):
                evaluator.evaluate(mapping, uniform)
        assert evaluator.cache_entries <= 3

    def test_default_scaling_is_platform_state(self, mpeg2_evaluator, rr_mapping4):
        explicit = mpeg2_evaluator.evaluate(
            rr_mapping4, mpeg2_evaluator.platform.scaling_vector()
        )
        implicit = mpeg2_evaluator.evaluate(rr_mapping4)
        assert implicit.scaling == explicit.scaling

    def test_rejects_wrong_scaling_length(self, mpeg2_evaluator, rr_mapping4):
        with pytest.raises(ValueError):
            mpeg2_evaluator.evaluate(rr_mapping4, (1, 1))

    def test_rejects_incomplete_mapping(self, mpeg2_evaluator):
        partial = Mapping({"t1": 0}, 4)
        with pytest.raises(ValueError):
            mpeg2_evaluator.evaluate(partial, (1, 1, 1, 1))

    def test_register_kbits_unit(self, mpeg2_evaluator, rr_mapping4):
        point = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        assert point.register_kbits_total == pytest.approx(
            point.register_bits_total / 1000.0
        )

    def test_summary_mentions_deadline(self, mpeg2_evaluator, rr_mapping4):
        point = mpeg2_evaluator.evaluate(rr_mapping4, (3, 3, 3, 3))
        assert "MISSED" in point.summary()

    def test_localized_mapping_reduces_registers(self, mpeg2_evaluator, mpeg2):
        localized = Mapping.all_on_core(mpeg2, 4, 0)
        spread = Mapping.round_robin(mpeg2, 4)
        r_localized = total_register_bits(mpeg2, localized)
        r_spread = total_register_bits(mpeg2, spread)
        assert r_localized < r_spread  # the Section III trade-off

    def test_localized_mapping_increases_makespan(self, mpeg2_evaluator, mpeg2):
        localized = Mapping.all_on_core(mpeg2, 4, 0)
        spread = Mapping.round_robin(mpeg2, 4)
        tm_localized = mpeg2_evaluator.evaluate(localized, (1, 1, 1, 1)).makespan_s
        tm_spread = mpeg2_evaluator.evaluate(spread, (1, 1, 1, 1)).makespan_s
        assert tm_localized > tm_spread
