"""Tests for the joint Fig. 4 design-optimization loop."""

import pytest

from repro.arch import MPSoC
from repro.optim import (
    DesignOptimizer,
    RegisterUsageObjective,
    baseline_mapper,
    sea_mapper,
)
from repro.taskgraph import pipeline_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


@pytest.fixture(scope="module")
def mpeg2_outcome():
    """One shared Exp:4-style optimization run (module-scoped: slow)."""
    optimizer = DesignOptimizer(
        mpeg2_decoder(),
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
        mapper=sea_mapper(search_iterations=400),
        stop_after_feasible=4,
        seed=0,
    )
    return optimizer, optimizer.optimize()


class TestOutcome:
    def test_finds_feasible_design(self, mpeg2_outcome):
        _, outcome = mpeg2_outcome
        assert outcome.best is not None
        assert outcome.best.makespan_s <= MPEG2_DEADLINE_S + 1e-9

    def test_best_is_min_power_up_to_band(self, mpeg2_outcome):
        optimizer, outcome = mpeg2_outcome
        feasible = outcome.feasible_points
        min_power = min(point.power_mw for point in feasible)
        assert outcome.best.power_mw <= min_power * (1 + optimizer.power_tolerance) + 1e-9

    def test_best_minimizes_tiebreak_within_band(self, mpeg2_outcome):
        optimizer, outcome = mpeg2_outcome
        feasible = outcome.feasible_points
        min_power = min(point.power_mw for point in feasible)
        band = min_power * (1 + optimizer.power_tolerance)
        contenders = [p for p in feasible if p.power_mw <= band + 1e-12]
        assert outcome.best.expected_seus == min(
            p.expected_seus for p in contenders
        )

    def test_assessments_recorded(self, mpeg2_outcome):
        _, outcome = mpeg2_outcome
        assert outcome.assessments
        for record in outcome.assessments:
            assert record.feasible == (
                record.point.makespan_s <= MPEG2_DEADLINE_S + 1e-12
            )

    def test_evaluations_counted(self, mpeg2_outcome):
        _, outcome = mpeg2_outcome
        assert outcome.evaluations > 0


class TestDeterminism:
    def test_same_seed_same_design(self):
        def run():
            optimizer = DesignOptimizer(
                mpeg2_decoder(),
                MPSoC.paper_reference(4),
                deadline_s=MPEG2_DEADLINE_S,
                mapper=sea_mapper(search_iterations=150),
                stop_after_feasible=2,
                seed=42,
            )
            return optimizer.optimize()

        a, b = run(), run()
        assert a.best.mapping == b.best.mapping
        assert a.best.scaling == b.best.scaling


class TestBaselineFlow:
    def test_fixed_mapping_across_scalings(self):
        optimizer = DesignOptimizer(
            mpeg2_decoder(),
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=baseline_mapper(RegisterUsageObjective()),
            remap_per_scaling=False,
            stop_after_feasible=4,
            seed=1,
        )
        outcome = optimizer.optimize()
        mappings = {record.point.mapping for record in outcome.assessments}
        assert len(mappings) == 1  # one mapping re-timed across scalings

    def test_baseline_tiebreak_uses_objective(self):
        objective = RegisterUsageObjective()
        optimizer = DesignOptimizer(
            mpeg2_decoder(),
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=baseline_mapper(objective),
            remap_per_scaling=False,
            tiebreak=objective,
            stop_after_feasible=4,
            seed=2,
        )
        outcome = optimizer.optimize()
        assert outcome.best is not None


class TestInfeasible:
    def test_impossible_deadline_returns_none(self):
        graph = pipeline_graph(4, task_cycles=10_000_000)
        optimizer = DesignOptimizer(
            graph,
            MPSoC.paper_reference(2),
            deadline_s=1e-6,  # unreachable
            mapper=sea_mapper(search_iterations=50),
            seed=0,
        )
        outcome = optimizer.optimize()
        assert outcome.best is None
        assert outcome.feasible_points == []


class TestPowerProxyOrdering:
    def test_proxy_orders_uniform_scalings_by_depth(self):
        optimizer = DesignOptimizer(
            mpeg2_decoder(),
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            seed=0,
        )
        deep = optimizer.power_proxy((3, 3, 3, 3))
        mid = optimizer.power_proxy((2, 2, 2, 2))
        nominal = optimizer.power_proxy((1, 1, 1, 1))
        assert deep < mid < nominal

    def test_scaling_seed_is_content_based(self):
        from repro.arch import ScalingTable

        three = DesignOptimizer(
            mpeg2_decoder(),
            MPSoC(4, scaling_table=ScalingTable.arm7_three_level()),
            deadline_s=MPEG2_DEADLINE_S,
        )
        four = DesignOptimizer(
            mpeg2_decoder(),
            MPSoC(4, scaling_table=ScalingTable.arm7_four_level()),
            deadline_s=MPEG2_DEADLINE_S,
        )
        # (2,2,2,1) under 3 levels is physically (3,3,3,2) under 4.
        assert three._scaling_seed((2, 2, 2, 1)) == four._scaling_seed((3, 3, 3, 2))


class TestValidation:
    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            DesignOptimizer(
                mpeg2_decoder(), MPSoC.paper_reference(4), deadline_s=0.0
            )

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            DesignOptimizer(
                mpeg2_decoder(),
                MPSoC.paper_reference(4),
                deadline_s=1.0,
                power_tolerance=-0.1,
            )

    def test_sea_mapper_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            sea_mapper(engine="quantum")
