"""Tests for InitialSEAMapping, OptimizedMapping and the SA baseline."""

import pytest

from repro.mapping import Mapping, MappingEvaluator
from repro.optim import (
    OptimizedMappingSearch,
    SEUObjective,
    RegisterUsageObjective,
    SimulatedAnnealingMapper,
    initial_sea_mapping,
)
from repro.optim.annealing import AnnealingConfig
from repro.taskgraph.examples import FIG8_DEADLINE_S, FIG8_SCALING
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


class TestInitialSEAMapping:
    def test_covers_all_tasks(self, mpeg2, platform4):
        mapping = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S)
        mapping.validate_against(mpeg2)

    def test_populates_every_core(self, mpeg2, platform4):
        mapping = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S)
        assert len(mapping.used_cores()) == platform4.num_cores

    def test_fig8_platform(self, fig8, platform3):
        mapping = initial_sea_mapping(
            fig8, platform3, FIG8_DEADLINE_S, scaling=FIG8_SCALING
        )
        mapping.validate_against(fig8)
        assert len(mapping.used_cores()) == 3

    def test_first_entry_task_on_first_core(self, mpeg2, platform4):
        # Line 1 of Fig. 6: the task with no predecessor seeds core 1.
        mapping = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S)
        assert mapping.core_of("t1") == 0

    def test_deterministic(self, mpeg2, platform4):
        a = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S, scaling=(2, 2, 3, 2))
        b = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S, scaling=(2, 2, 3, 2))
        assert a == b

    def test_scaling_affects_construction(self, mpeg2, platform4):
        # The per-core time budget depends on frequency, so deep
        # scalings pack fewer tasks per core.
        shallow = initial_sea_mapping(mpeg2, platform4, 1.0, scaling=(1, 1, 1, 1))
        deep = initial_sea_mapping(mpeg2, platform4, 1.0, scaling=(3, 3, 3, 3))
        first_core_shallow = len(shallow.tasks_on(0))
        first_core_deep = len(deep.tasks_on(0))
        assert first_core_deep <= first_core_shallow

    def test_rejects_bad_deadline(self, mpeg2, platform4):
        with pytest.raises(ValueError):
            initial_sea_mapping(mpeg2, platform4, 0.0)

    def test_rejects_bad_scaling(self, mpeg2, platform4):
        with pytest.raises(ValueError):
            initial_sea_mapping(mpeg2, platform4, 1.0, scaling=(9, 1, 1, 1))

    def test_single_core(self, mpeg2):
        from repro.arch import MPSoC

        platform = MPSoC.paper_reference(1)
        mapping = initial_sea_mapping(mpeg2, platform, MPEG2_DEADLINE_S)
        assert mapping.used_cores() == (0,)

    def test_more_cores_than_tasks(self, platform4):
        from repro.taskgraph import pipeline_graph

        graph = pipeline_graph(3)
        mapping = initial_sea_mapping(graph, platform4, 10.0)
        mapping.validate_against(graph)  # all tasks placed, cores may idle


class TestOptimizedMappingSearch:
    def test_improves_or_keeps_initial(self, mpeg2_evaluator, mpeg2, platform4):
        initial = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S, scaling=(2, 2, 3, 2))
        start = mpeg2_evaluator.evaluate(initial, (2, 2, 3, 2))
        result = OptimizedMappingSearch(mpeg2_evaluator, max_iterations=400, seed=0).run(
            initial, (2, 2, 3, 2)
        )
        if start.meets_deadline:
            assert result.best.expected_seus <= start.expected_seus
        assert result.feasible

    def test_respects_deadline(self, mpeg2_evaluator, mpeg2, platform4):
        initial = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S, scaling=(2, 2, 2, 2))
        result = OptimizedMappingSearch(mpeg2_evaluator, max_iterations=400, seed=1).run(
            initial, (2, 2, 2, 2)
        )
        assert result.best.makespan_s <= MPEG2_DEADLINE_S + 1e-9

    def test_keeps_all_cores_populated(self, mpeg2_evaluator, mpeg2, platform4):
        initial = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S, scaling=(1, 1, 1, 1))
        result = OptimizedMappingSearch(mpeg2_evaluator, max_iterations=300, seed=2).run(
            initial, (1, 1, 1, 1)
        )
        assert len(result.best.mapping.used_cores()) == 4

    def test_deterministic_given_seed(self, mpeg2_evaluator, mpeg2, platform4):
        initial = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S, scaling=(1, 1, 1, 1))
        a = OptimizedMappingSearch(mpeg2_evaluator, max_iterations=200, seed=3).run(
            initial, (1, 1, 1, 1)
        )
        b = OptimizedMappingSearch(mpeg2_evaluator, max_iterations=200, seed=3).run(
            initial, (1, 1, 1, 1)
        )
        assert a.best.mapping == b.best.mapping
        assert a.best.expected_seus == b.best.expected_seus

    def test_iteration_budget_respected(self, mpeg2_evaluator, mpeg2, platform4):
        initial = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S)
        result = OptimizedMappingSearch(mpeg2_evaluator, max_iterations=50, seed=4).run(
            initial
        )
        assert result.iterations <= 50

    def test_history_recorded(self, mpeg2_evaluator, mpeg2, platform4):
        initial = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S)
        result = OptimizedMappingSearch(
            mpeg2_evaluator, max_iterations=300, seed=5, record_history=True
        ).run(initial, (1, 1, 1, 1))
        gammas = [gamma for _, gamma in result.history]
        assert gammas == sorted(gammas, reverse=True)  # best only improves

    def test_time_limit(self, mpeg2_evaluator, mpeg2, platform4):
        initial = initial_sea_mapping(mpeg2, platform4, MPEG2_DEADLINE_S)
        result = OptimizedMappingSearch(
            mpeg2_evaluator, max_iterations=10_000_000, time_limit_s=0.05, seed=6
        ).run(initial)
        assert result.iterations < 10_000_000

    def test_requires_deadline(self, mpeg2, platform4):
        evaluator = MappingEvaluator(mpeg2, platform4)  # no deadline
        with pytest.raises(ValueError):
            OptimizedMappingSearch(evaluator)

    def test_parameter_validation(self, mpeg2_evaluator):
        with pytest.raises(ValueError):
            OptimizedMappingSearch(mpeg2_evaluator, max_iterations=0)
        with pytest.raises(ValueError):
            OptimizedMappingSearch(mpeg2_evaluator, walk_probability=1.5)


class TestSimulatedAnnealing:
    def test_minimizes_objective(self, mpeg2_evaluator, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        start = mpeg2_evaluator.evaluate(initial, (1, 1, 1, 1))
        mapper = SimulatedAnnealingMapper(
            mpeg2_evaluator,
            RegisterUsageObjective(),
            AnnealingConfig(max_iterations=800),
            seed=0,
            deadline_penalty=False,
        )
        best = mapper.run(initial, (1, 1, 1, 1))
        assert best.register_bits_total <= start.register_bits_total

    def test_deterministic(self, mpeg2_evaluator, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        config = AnnealingConfig(max_iterations=300)
        a = SimulatedAnnealingMapper(
            mpeg2_evaluator, SEUObjective(), config, seed=9
        ).run(initial, (1, 1, 1, 1))
        b = SimulatedAnnealingMapper(
            mpeg2_evaluator, SEUObjective(), config, seed=9
        ).run(initial, (1, 1, 1, 1))
        assert a.mapping == b.mapping

    def test_require_all_cores(self, mpeg2_evaluator, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        mapper = SimulatedAnnealingMapper(
            mpeg2_evaluator,
            RegisterUsageObjective(),
            AnnealingConfig(max_iterations=800),
            seed=1,
            deadline_penalty=False,
            require_all_cores=True,
        )
        best = mapper.run(initial, (1, 1, 1, 1))
        assert len(best.mapping.used_cores()) == 4

    def test_restarts_take_best(self, mpeg2_evaluator, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        single = SimulatedAnnealingMapper(
            mpeg2_evaluator,
            SEUObjective(),
            AnnealingConfig(max_iterations=200, restarts=1),
            seed=2,
        ).run(initial, (1, 1, 1, 1))
        multi = SimulatedAnnealingMapper(
            mpeg2_evaluator,
            SEUObjective(),
            AnnealingConfig(max_iterations=200, restarts=3),
            seed=2,
        ).run(initial, (1, 1, 1, 1))
        assert multi.expected_seus <= single.expected_seus

    def test_feasible_dominates_infeasible(self, mpeg2_evaluator, mpeg2):
        # With the deadline penalty on, the returned best must meet the
        # deadline whenever any visited point did.
        initial = Mapping.round_robin(mpeg2, 4)
        best = SimulatedAnnealingMapper(
            mpeg2_evaluator,
            SEUObjective(),
            AnnealingConfig(max_iterations=600),
            seed=3,
        ).run(initial, (2, 2, 2, 2))
        assert best.meets_deadline

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"initial_temperature": 0.0},
            {"cooling": 1.0},
            {"cooling": 0.0},
            {"restarts": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnnealingConfig(**kwargs)
