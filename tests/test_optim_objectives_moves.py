"""Tests for objectives and neighbourhood moves."""

import random

import pytest

from repro.mapping import Mapping
from repro.optim import (
    MakespanObjective,
    PowerObjective,
    RegisterTimeProductObjective,
    RegisterUsageObjective,
    SEUObjective,
    deadline_penalized,
    neighbor_mappings,
    random_neighbor,
)
from repro.optim.moves import swap_neighborhood


class TestObjectives:
    @pytest.fixture
    def point(self, mpeg2_evaluator, rr_mapping4):
        return mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))

    def test_register_usage(self, point):
        assert RegisterUsageObjective()(point) == point.register_bits_total

    def test_makespan(self, point):
        assert MakespanObjective()(point) == point.makespan_s

    def test_product(self, point):
        assert RegisterTimeProductObjective()(point) == pytest.approx(
            point.makespan_s * point.register_bits_total
        )

    def test_seus(self, point):
        assert SEUObjective()(point) == point.expected_seus

    def test_power(self, point):
        assert PowerObjective()(point) == point.power_mw

    def test_objectives_have_names(self):
        for objective in (
            RegisterUsageObjective(),
            MakespanObjective(),
            RegisterTimeProductObjective(),
            SEUObjective(),
            PowerObjective(),
        ):
            assert objective.name


class TestDeadlinePenalty:
    def test_feasible_unchanged(self, mpeg2_evaluator, rr_mapping4):
        point = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        objective = SEUObjective()
        penalized = deadline_penalized(objective, deadline_s=1e6)
        assert penalized(point) == objective(point)

    def test_infeasible_penalized(self, mpeg2_evaluator, rr_mapping4):
        point = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        objective = SEUObjective()
        tight = deadline_penalized(objective, deadline_s=point.makespan_s / 2)
        assert tight(point) > objective(point)

    def test_penalty_grows_with_overrun(self, mpeg2_evaluator, rr_mapping4):
        point = mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))
        objective = SEUObjective()
        mild = deadline_penalized(objective, deadline_s=point.makespan_s * 0.9)
        harsh = deadline_penalized(objective, deadline_s=point.makespan_s * 0.5)
        assert harsh(point) > mild(point)

    def test_validation(self):
        with pytest.raises(ValueError):
            deadline_penalized(SEUObjective(), deadline_s=0.0)
        with pytest.raises(ValueError):
            deadline_penalized(SEUObjective(), deadline_s=1.0, penalty_weight=-1.0)


class TestRandomNeighbor:
    def test_changes_at_most_two_tasks(self, mpeg2, rr_mapping4):
        rng = random.Random(0)
        for _ in range(50):
            neighbor = random_neighbor(rr_mapping4, mpeg2, rng)
            moved = [
                name
                for name in mpeg2.task_names()
                if neighbor.core_of(name) != rr_mapping4.core_of(name)
            ]
            assert 1 <= len(moved) <= 2

    def test_swap_exchanges_cores(self, mpeg2, rr_mapping4):
        rng = random.Random(1)
        for _ in range(50):
            neighbor = random_neighbor(rr_mapping4, mpeg2, rng, swap_probability=1.0)
            moved = [
                name
                for name in mpeg2.task_names()
                if neighbor.core_of(name) != rr_mapping4.core_of(name)
            ]
            if len(moved) == 2:
                a, b = moved
                assert neighbor.core_of(a) == rr_mapping4.core_of(b)
                assert neighbor.core_of(b) == rr_mapping4.core_of(a)

    def test_focus_task_biases_selection(self, mpeg2, rr_mapping4):
        rng = random.Random(2)
        related = {"t6", "t4", "t8"}  # t6 plus its direct neighbours
        for _ in range(30):
            neighbor = random_neighbor(
                rr_mapping4, mpeg2, rng, swap_probability=0.0, focus_task="t6"
            )
            moved = [
                name
                for name in mpeg2.task_names()
                if neighbor.core_of(name) != rr_mapping4.core_of(name)
            ]
            assert set(moved) <= related

    def test_single_core_is_identity(self, mpeg2):
        mapping = Mapping.all_on_core(mpeg2, 1, 0)
        assert random_neighbor(mapping, mpeg2, random.Random(0)) == mapping

    def test_deterministic_given_seed(self, mpeg2, rr_mapping4):
        a = random_neighbor(rr_mapping4, mpeg2, random.Random(7))
        b = random_neighbor(rr_mapping4, mpeg2, random.Random(7))
        assert a == b


class TestDeterministicNeighbourhoods:
    def test_move_neighbourhood_size(self, mpeg2, rr_mapping4):
        neighbours = list(neighbor_mappings(rr_mapping4, mpeg2))
        assert len(neighbours) == mpeg2.num_tasks * (rr_mapping4.num_cores - 1)

    def test_move_neighbourhood_distinct_from_origin(self, mpeg2, rr_mapping4):
        for neighbour in neighbor_mappings(rr_mapping4, mpeg2):
            assert neighbour != rr_mapping4

    def test_swap_neighbourhood_only_cross_core(self, mpeg2, rr_mapping4):
        for neighbour in swap_neighborhood(rr_mapping4, mpeg2):
            moved = [
                name
                for name in mpeg2.task_names()
                if neighbour.core_of(name) != rr_mapping4.core_of(name)
            ]
            assert len(moved) == 2
