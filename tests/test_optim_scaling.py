"""Tests for the nextScaling enumerator (Fig. 5)."""

import pytest

from repro.optim import next_scaling, num_scaling_combinations, scaling_combinations
from repro.optim.scaling_algorithm import all_scalings_list

#: Fig. 5(b) verbatim: the 15 combinations for four cores, three levels.
FIG5B = [
    (3, 3, 3, 3),
    (3, 3, 3, 2),
    (3, 3, 3, 1),
    (3, 3, 2, 2),
    (3, 3, 2, 1),
    (3, 3, 1, 1),
    (3, 2, 2, 2),
    (3, 2, 2, 1),
    (3, 2, 1, 1),
    (3, 1, 1, 1),
    (2, 2, 2, 2),
    (2, 2, 2, 1),
    (2, 2, 1, 1),
    (2, 1, 1, 1),
    (1, 1, 1, 1),
]


class TestNextScaling:
    def test_reproduces_fig5b_row_by_row(self):
        state = (3, 3, 3, 3)
        for expected_next in FIG5B[1:]:
            state = next_scaling(state, 3)
            assert state == expected_next
        assert next_scaling(state, 3) is None

    def test_terminates_at_nominal(self):
        assert next_scaling((1, 1, 1, 1)) is None
        assert next_scaling((1,)) is None

    def test_single_core(self):
        assert next_scaling((3,), 3) == (2,)
        assert next_scaling((2,), 3) == (1,)

    def test_rejects_increasing_vector(self):
        with pytest.raises(ValueError):
            next_scaling((1, 2), 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            next_scaling((4, 1), 3)
        with pytest.raises(ValueError):
            next_scaling((0,), 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            next_scaling(())


class TestScalingCombinations:
    def test_full_sequence_matches_fig5b(self):
        assert all_scalings_list(4, 3) == FIG5B

    def test_count_is_15_for_paper_case(self):
        # "15 unique combinations ... compared to 3^4 = 81".
        assert num_scaling_combinations(4, 3) == 15
        assert len(all_scalings_list(4, 3)) == 15

    @pytest.mark.parametrize(
        "cores,levels",
        [(1, 1), (2, 3), (3, 2), (4, 4), (6, 3), (5, 2)],
    )
    def test_count_formula(self, cores, levels):
        assert len(all_scalings_list(cores, levels)) == num_scaling_combinations(
            cores, levels
        )

    def test_all_non_increasing(self):
        for combo in scaling_combinations(5, 3):
            assert list(combo) == sorted(combo, reverse=True)

    def test_all_unique(self):
        combos = all_scalings_list(6, 3)
        assert len(set(combos)) == len(combos)

    def test_starts_deepest_ends_nominal(self):
        combos = all_scalings_list(3, 4)
        assert combos[0] == (4, 4, 4)
        assert combos[-1] == (1, 1, 1)

    def test_descending_lexicographic_order(self):
        combos = all_scalings_list(4, 3)
        assert combos == sorted(combos, reverse=True)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            list(scaling_combinations(0, 3))
        with pytest.raises(ValueError):
            num_scaling_combinations(4, 0)
