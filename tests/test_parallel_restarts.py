"""Restart-level parallelism: determinism contract and screening stats."""

import pickle

import pytest

from repro.arch import MPSoC
from repro.exec import SerialBackend, resolve_backend
from repro.mapping import Mapping, MappingEvaluator
from repro.optim import (
    AnnealingConfig,
    DesignOptimizer,
    OptimizedMappingSearch,
    RegisterUsageObjective,
    SEUObjective,
    SimulatedAnnealingMapper,
    baseline_mapper,
    sea_mapper,
)
from repro.taskgraph import mpeg2_decoder
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S

SCALING = (2, 2, 3, 2)


@pytest.fixture(scope="module")
def mpeg2():
    return mpeg2_decoder()


def _mapper(graph, backend=None, screening=False, restarts=3, **kwargs):
    evaluator = MappingEvaluator(
        graph, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S
    )
    return SimulatedAnnealingMapper(
        evaluator,
        SEUObjective(),
        config=AnnealingConfig(max_iterations=250, restarts=restarts),
        seed=11,
        deadline_penalty=True,
        require_all_cores=True,
        screening=screening,
        backend=backend,
        **kwargs,
    )


def _assert_same_point(first, second):
    assert first.mapping == second.mapping
    assert first.scaling == second.scaling
    assert first.power_mw == second.power_mw
    assert first.expected_seus == second.expected_seus
    assert first.makespan_s == second.makespan_s


class TestParallelRestartParity:
    """Thread and process restart dispatch select the serial design."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial(self, mpeg2, backend):
        initial = Mapping.round_robin(mpeg2, 4)
        serial_mapper = _mapper(mpeg2)
        parallel_mapper = _mapper(mpeg2, backend=backend)
        serial = serial_mapper.run(initial, SCALING)
        parallel = parallel_mapper.run(initial, SCALING)
        _assert_same_point(serial, parallel)
        assert (
            parallel_mapper.restart_evaluations == serial_mapper.restart_evaluations
        )

    def test_screened_stats_match_serial(self, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        serial_mapper = _mapper(mpeg2, screening=True, screen_threshold=0.5)
        thread_mapper = _mapper(
            mpeg2, backend="thread", screening=True, screen_threshold=0.5
        )
        _assert_same_point(
            serial_mapper.run(initial, SCALING), thread_mapper.run(initial, SCALING)
        )
        assert serial_mapper.screened_moves > 0
        assert (
            thread_mapper.screened_moves_per_restart
            == serial_mapper.screened_moves_per_restart
        )
        assert thread_mapper.screened_moves == serial_mapper.screened_moves

    def test_single_restart_stays_serial(self, mpeg2):
        # One restart never pays dispatch overhead, whatever the spec.
        initial = Mapping.round_robin(mpeg2, 4)
        mapper = _mapper(mpeg2, backend="process", restarts=1)
        serial = _mapper(mpeg2, restarts=1)
        _assert_same_point(serial.run(initial, SCALING), mapper.run(initial, SCALING))

    def test_restart_jobs_are_picklable(self, mpeg2):
        mapper = _mapper(mpeg2, screening=True)
        job = mapper._restart_job(Mapping.round_robin(mpeg2, 4), SCALING, 2)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.restart == 2
        assert clone.scaling == SCALING

    def test_restart_job_reproduces_run_once(self, mpeg2):
        mapper = _mapper(mpeg2)
        initial = Mapping.round_robin(mpeg2, 4)
        job = mapper._restart_job(initial, SCALING, 1)
        point, screened, evaluations, hits, misses, inner = job.run()
        _assert_same_point(point, mapper._run_once(initial, SCALING, 1))
        assert screened == 0
        assert evaluations > 0
        assert evaluations == hits + misses
        assert inner.moves_drawn > 0
        assert inner.materialized_mappings > 0

    def test_reference_restart_job_matches_descriptor_job(self, mpeg2):
        mapper = _mapper(mpeg2)
        initial = Mapping.round_robin(mpeg2, 4)
        descriptor = mapper._restart_job(initial, SCALING, 1)
        reference = mapper._restart_job(initial, SCALING, 1, reference=True)
        point_d, *counts_d, inner_d = descriptor.run()
        point_r, *counts_r, inner_r = reference.run()
        _assert_same_point(point_d, point_r)
        assert counts_d == counts_r  # screened/evaluations/hits/misses
        assert inner_r.moves_drawn == 0  # reference loop is uninstrumented


class TestScreenedMovesReset:
    """Regression: screening stats must reset on every run()."""

    def test_annealer_second_run_not_inflated(self, mpeg2):
        mapper = _mapper(mpeg2, screening=True, screen_threshold=0.5)
        initial = Mapping.round_robin(mpeg2, 4)
        mapper.run(initial, SCALING)
        first = mapper.screened_moves
        first_per_restart = list(mapper.screened_moves_per_restart)
        assert first > 0
        assert sum(first_per_restart) == first
        assert len(first_per_restart) == mapper.config.restarts
        mapper.run(initial, SCALING)
        assert mapper.screened_moves == first
        assert mapper.screened_moves_per_restart == first_per_restart

    def test_optimized_search_second_run_not_inflated(self, mpeg2):
        evaluator = MappingEvaluator(
            mpeg2, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S
        )
        search = OptimizedMappingSearch(
            evaluator, max_iterations=250, seed=3, screen_moves=True
        )
        initial = Mapping.round_robin(mpeg2, 4)
        first = search.run(initial, SCALING)
        count = search.screened_moves
        second = search.run(initial, SCALING)
        assert search.screened_moves == count
        assert first.screened_moves == count
        assert second.screened_moves == count


class TestRestartKnobs:
    def test_config_validates_restart_backend(self):
        with pytest.raises(ValueError, match="restart_backend"):
            AnnealingConfig(restart_backend="gpu")
        assert AnnealingConfig(restart_backend="thread").restart_backend == "thread"

    def test_config_stays_picklable(self):
        config = AnnealingConfig(restarts=4, restart_backend="process")
        assert pickle.loads(pickle.dumps(config)) == config

    def test_sea_mapper_restart_override(self, mpeg2):
        evaluator = MappingEvaluator(
            mpeg2, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S
        )
        mapper = sea_mapper(search_iterations=120, restarts=3)
        assert mapper.restarts == 3
        with pytest.raises(ValueError, match="restarts"):
            sea_mapper(restarts=0)
        point = mapper(evaluator, (1, 1, 1, 1), 0)
        assert point.expected_seus > 0

    def test_sea_mapper_backend_parity(self, mpeg2):
        evaluator = MappingEvaluator(
            mpeg2, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S
        )
        serial = sea_mapper(search_iterations=120, restarts=2)(
            evaluator, (1, 1, 1, 1), 5
        )
        threaded = sea_mapper(
            search_iterations=120, restarts=2, restart_backend="thread"
        )(evaluator, (1, 1, 1, 1), 5)
        _assert_same_point(serial, threaded)

    def test_baseline_mapper_restart_override(self, mpeg2):
        evaluator = MappingEvaluator(
            mpeg2, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S
        )
        config = AnnealingConfig(max_iterations=150)
        serial = baseline_mapper(
            RegisterUsageObjective(), config=config, restarts=2
        )(evaluator, (1, 1, 1, 1), 5)
        threaded = baseline_mapper(
            RegisterUsageObjective(),
            config=config,
            restarts=2,
            restart_backend="thread",
        )(evaluator, (1, 1, 1, 1), 5)
        _assert_same_point(serial, threaded)
        with pytest.raises(ValueError, match="restarts"):
            baseline_mapper(RegisterUsageObjective(), restarts=-1)


class TestEvaluationAccounting:
    def test_parallel_restarts_fold_counts_into_evaluator(self, mpeg2):
        # The stats contract: a backend changes wall-clock only, so the
        # shared evaluator must report the same total either way.
        initial = Mapping.round_robin(mpeg2, 4)
        serial_mapper = _mapper(mpeg2)
        thread_mapper = _mapper(mpeg2, backend="thread")
        serial_mapper.run(initial, SCALING)
        thread_mapper.run(initial, SCALING)
        assert (
            thread_mapper.evaluator.evaluations
            == serial_mapper.evaluator.evaluations
        )
        # The hit/miss *split* may differ (serial restarts share one
        # cache, workers start cold) but the accounting invariant must
        # hold on both sides.
        for evaluator in (serial_mapper.evaluator, thread_mapper.evaluator):
            assert (
                evaluator.evaluations
                == evaluator.cache_hits + evaluator.cache_misses
            )


class TestNestedPoolGuard:
    """A parallel scaling sweep must not open restart pools in workers."""

    def test_serial_restart_mapper_forces_the_field(self):
        from repro.optim.design_optimizer import _serial_restart_mapper

        forced = _serial_restart_mapper(
            sea_mapper(search_iterations=120, restarts=2, restart_backend="process")
        )
        assert forced.restart_backend == "serial"
        # The backend can also ride in via the annealing config with
        # the field itself None; the field override must still win.
        baseline = baseline_mapper(
            RegisterUsageObjective(),
            config=AnnealingConfig(max_iterations=150, restart_backend="process"),
        )
        assert baseline.restart_backend is None
        assert _serial_restart_mapper(baseline).restart_backend == "serial"
        assert _serial_restart_mapper(None) is None

    def test_parallel_sweep_jobs_carry_serial_restarts(self, mpeg2):
        optimizer = DesignOptimizer(
            mpeg2,
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=sea_mapper(
                search_iterations=120, restarts=2, restart_backend="thread"
            ),
            seed=0,
        )
        job = optimizer._scaling_job((1, 1, 1, 1), None, serial_restarts=True)
        assert job.mapper.restart_backend == "serial"

    def test_combined_cuts_still_match_serial(self, mpeg2):
        def build(backend, restart_backend):
            return DesignOptimizer(
                mpeg2,
                MPSoC.paper_reference(4),
                deadline_s=MPEG2_DEADLINE_S,
                mapper=sea_mapper(
                    search_iterations=120,
                    restarts=2,
                    restart_backend=restart_backend,
                ),
                stop_after_feasible=2,
                seed=0,
                backend=backend,
            )

        serial = build(None, None).optimize()
        combined = build("thread", "thread").optimize()
        assert serial.best is not None and combined.best is not None
        _assert_same_point(serial.best, combined.best)


class TestLazyProbe:
    """Regression: probes are only built when the auto branch needs one."""

    def test_probe_factory_untouched_for_explicit_specs(self):
        calls = []

        def factory():
            calls.append(1)
            return (1, 2)

        for spec in (None, "serial", "thread", "process", SerialBackend()):
            backend = resolve_backend(spec, task_count=8, probe_factory=factory)
            backend.close()
        assert calls == []

    def test_optimizer_serial_sweep_builds_no_jobs(self, mpeg2, monkeypatch):
        optimizer = DesignOptimizer(
            mpeg2,
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=120),
            stop_after_feasible=2,
            seed=0,
        )
        calls = []
        original = optimizer._scaling_job

        def counting(scaling, fixed_mapping):
            calls.append(scaling)
            return original(scaling, fixed_mapping)

        monkeypatch.setattr(optimizer, "_scaling_job", counting)
        assert optimizer.optimize().best is not None
        assert calls == []

    def test_annealer_serial_run_builds_no_jobs(self, mpeg2, monkeypatch):
        mapper = _mapper(mpeg2)
        monkeypatch.setattr(
            mapper,
            "_restart_job",
            lambda *args, **kwargs: pytest.fail("serial run built a restart job"),
        )
        assert mapper.run(Mapping.round_robin(mpeg2, 4), SCALING) is not None


class TestMaxWorkersPlumbing:
    def test_optimizer_rejects_bad_max_workers(self, mpeg2):
        with pytest.raises(ValueError, match="max_workers"):
            DesignOptimizer(
                mpeg2,
                MPSoC.paper_reference(4),
                deadline_s=MPEG2_DEADLINE_S,
                max_workers=0,
            )

    def test_optimizer_max_workers_reaches_backend(self, mpeg2, monkeypatch):
        import repro.optim.design_optimizer as module

        seen = {}
        original = module.resolve_backend

        def capturing(spec, **kwargs):
            seen.update(kwargs)
            return original(spec, **kwargs)

        monkeypatch.setattr(module, "resolve_backend", capturing)
        optimizer = DesignOptimizer(
            mpeg2,
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=120),
            stop_after_feasible=2,
            seed=0,
            backend="thread",
            max_workers=2,
        )
        assert optimizer.optimize().best is not None
        assert seen["max_workers"] == 2
