"""Tests for the ASCII plot renderers."""

import pytest

from repro.experiments.plots import ascii_scatter, fig3_scatter, pareto_plot


class TestAsciiScatter:
    def test_renders_all_points(self):
        text = ascii_scatter([(0, 0), (1, 1), (2, 4)], width=20, height=8)
        assert text.count("*") == 3

    def test_empty(self):
        assert ascii_scatter([]) == "(no data)"

    def test_degenerate_range(self):
        text = ascii_scatter([(1, 5), (1, 5)], width=10, height=5)
        assert "*" in text

    def test_labels_present(self):
        text = ascii_scatter([(0, 0), (1, 1)], x_label="time", y_label="value")
        assert "time" in text and "value" in text

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter([(0, 0)], width=2, height=2)

    def test_extremes_land_on_borders(self):
        text = ascii_scatter([(0, 0), (10, 10)], width=12, height=6)
        rows = [line for line in text.splitlines() if line.startswith("|")]
        assert rows[0].rstrip().endswith("*")  # max y, max x -> top right
        assert "*" in rows[-1][:3]  # min y, min x -> bottom left


class TestFigurePlots:
    def test_fig3_panels(self):
        from repro.experiments import ExperimentProfile, run_fig3

        result = run_fig3(
            ExperimentProfile(
                name="tiny", fig3_mappings=20, search_iterations=50, sa_iterations=50
            )
        )
        for panel in ("a", "b", "c"):
            text = fig3_scatter(result, panel=panel)
            assert "*" in text
        with pytest.raises(ValueError):
            fig3_scatter(result, panel="z")

    def test_pareto_plot(self, mpeg2_evaluator, rr_mapping4):
        points = [
            mpeg2_evaluator.evaluate(rr_mapping4, scaling)
            for scaling in [(1, 1, 1, 1), (2, 2, 2, 2), (3, 3, 3, 3)]
        ]
        text = pareto_plot(points)
        assert "P mW" in text and "o" in text
