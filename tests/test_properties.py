"""Property-based tests (hypothesis) on core invariants.

Strategies generate random DAGs, mappings and scaling vectors; the
properties assert the structural invariants the optimizers rely on:
scheduler correctness, Eq. (8) duplication accounting, enumerator
algebra, and analytic/simulated Gamma agreement.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.arch import MPSoC
from repro.faults import SERModel
from repro.mapping import Mapping, MappingEvaluator
from repro.mapping.metrics import (
    per_core_execution_cycles,
    total_register_bits,
)
from repro.optim import next_scaling, num_scaling_combinations, scaling_combinations
from repro.sched import ListScheduler
from repro.sim import MPSoCSimulator
from repro.taskgraph import TaskGraph
from repro.taskgraph.registers import Register

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def dags(draw, max_tasks: int = 9):
    """A random connected DAG with shared edge buffers."""
    num_tasks = draw(st.integers(min_value=2, max_value=max_tasks))
    graph = TaskGraph(name="hypo")
    for index in range(num_tasks):
        graph.add_task(
            f"t{index}",
            cycles=draw(st.integers(min_value=1, max_value=1000)) * 1000,
            private_register_bits=draw(st.integers(min_value=1, max_value=5000)),
        )
    for consumer in range(1, num_tasks):
        num_preds = draw(st.integers(min_value=1, max_value=min(consumer, 3)))
        producers = draw(
            st.lists(
                st.integers(min_value=0, max_value=consumer - 1),
                min_size=num_preds,
                max_size=num_preds,
                unique=True,
            )
        )
        for producer in producers:
            comm = draw(st.integers(min_value=0, max_value=500)) * 100
            graph.add_edge(f"t{producer}", f"t{consumer}", comm)
            if draw(st.booleans()):
                buffer = Register(f"buf{producer}_{consumer}", 256)
                graph.attach_registers(f"t{producer}", [buffer])
                graph.attach_registers(f"t{consumer}", [buffer])
    return graph


@st.composite
def graph_and_mapping(draw, max_cores: int = 4):
    graph = draw(dags())
    num_cores = draw(st.integers(min_value=1, max_value=max_cores))
    assignment = {
        name: draw(st.integers(min_value=0, max_value=num_cores - 1))
        for name in graph.task_names()
    }
    return graph, Mapping(assignment, num_cores)


# ---------------------------------------------------------------------------
# Scheduler properties
# ---------------------------------------------------------------------------


@given(graph_and_mapping())
@settings(max_examples=60, deadline=None)
def test_schedule_is_always_consistent(data):
    graph, mapping = data
    frequencies = [1e8] * mapping.num_cores
    schedule = ListScheduler(graph, frequencies).schedule(mapping)
    schedule.verify(graph, mapping)  # precedence + non-overlap + coverage


def _compute_only_critical_path(graph: TaskGraph) -> int:
    """Longest path counting computation cycles only (comm may be free)."""
    longest = {}
    for name in reversed(graph.topological_order()):
        tail = max(
            (longest[successor] for successor in graph.successors(name)), default=0
        )
        longest[name] = graph.task(name).cycles + tail
    return max(longest[name] for name in graph.entry_tasks())


@given(graph_and_mapping())
@settings(max_examples=60, deadline=None)
def test_makespan_within_theoretical_bounds(data):
    graph, mapping = data
    frequency = 1e8
    schedule = ListScheduler(graph, [frequency] * mapping.num_cores).schedule(mapping)
    # Same-core edges cost nothing, so the valid lower bound is the
    # computation-only critical path.
    lower = _compute_only_critical_path(graph) / frequency
    upper = (graph.total_cycles() + graph.total_comm_cycles()) / frequency
    assert lower - 1e-9 <= schedule.makespan_s() <= upper + 1e-9


@given(graph_and_mapping())
@settings(max_examples=40, deadline=None)
def test_busy_cycles_equal_eq7(data):
    graph, mapping = data
    schedule = ListScheduler(graph, [1e8] * mapping.num_cores).schedule(mapping)
    analytic = per_core_execution_cycles(graph, mapping)
    for core in range(mapping.num_cores):
        assert schedule.busy_cycles(core) == analytic[core]


@given(graph_and_mapping(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_slowing_clock_scales_makespan(data, factor):
    graph, mapping = data
    base = ListScheduler(graph, [1e8] * mapping.num_cores).schedule(mapping)
    slowed = ListScheduler(graph, [1e8 / factor] * mapping.num_cores).schedule(mapping)
    assert slowed.makespan_s() == base.makespan_s() * factor or math.isclose(
        slowed.makespan_s(), base.makespan_s() * factor, rel_tol=1e-9
    )


# ---------------------------------------------------------------------------
# Register accounting properties (Eq. 8)
# ---------------------------------------------------------------------------


@given(graph_and_mapping())
@settings(max_examples=60, deadline=None)
def test_register_totals_bounded(data):
    graph, mapping = data
    register_map = graph.register_map()
    union_all = register_map.total_bits()
    total = total_register_bits(graph, mapping)
    # Between one shared copy and one copy per core.
    assert union_all <= total <= union_all * mapping.num_cores


@given(dags())
@settings(max_examples=40, deadline=None)
def test_single_core_mapping_has_no_duplication(graph):
    mapping = Mapping.all_on_core(graph, 3, 0)
    assert total_register_bits(graph, mapping) == graph.register_map().total_bits()


@given(graph_and_mapping())
@settings(max_examples=40, deadline=None)
def test_merging_cores_never_increases_registers(data):
    graph, mapping = data
    if mapping.num_cores < 2:
        return
    merged_assignment = {
        name: min(mapping.core_of(name), mapping.num_cores - 2)
        for name in mapping
    }
    merged = Mapping(merged_assignment, mapping.num_cores)
    assert total_register_bits(graph, merged) <= total_register_bits(graph, mapping)


# ---------------------------------------------------------------------------
# Scaling enumerator properties (Fig. 5)
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_enumerator_count_and_uniqueness(cores, levels):
    combos = list(scaling_combinations(cores, levels))
    assert len(combos) == num_scaling_combinations(cores, levels)
    assert len(set(combos)) == len(combos)
    for combo in combos:
        assert list(combo) == sorted(combo, reverse=True)
        assert all(1 <= value <= levels for value in combo)


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=4))
@settings(max_examples=30, deadline=None)
def test_enumerator_descending_order(cores, levels):
    combos = list(scaling_combinations(cores, levels))
    assert combos == sorted(combos, reverse=True)
    # Successor relation is consistent with next_scaling.
    for current, following in zip(combos, combos[1:]):
        assert next_scaling(current, levels) == following


# ---------------------------------------------------------------------------
# Gamma consistency: analytic Eq. (3) vs simulated exposure
# ---------------------------------------------------------------------------


@given(graph_and_mapping(max_cores=3))
@settings(max_examples=25, deadline=None)
def test_analytic_gamma_matches_trace_exposure(data):
    graph, mapping = data
    platform = MPSoC.paper_reference(mapping.num_cores)
    scaling = (1,) * mapping.num_cores
    evaluator = MappingEvaluator(graph, platform)
    point = evaluator.evaluate(mapping, scaling)

    simulator = MPSoCSimulator(graph, platform, scaling=scaling)
    result = simulator.run(mapping)
    ser = SERModel()
    rate = ser.rate(platform.scaling_table.vdd_v(1))
    trace_gamma = rate * result.occupancy.total_exposure_bit_cycles()
    assert math.isclose(point.expected_seus, trace_gamma, rel_tol=1e-3) or (
        point.expected_seus == trace_gamma == 0.0
    )


@given(graph_and_mapping(max_cores=3))
@settings(max_examples=25, deadline=None)
def test_gamma_non_negative_and_monotone_in_rate(data):
    graph, mapping = data
    platform = MPSoC.paper_reference(mapping.num_cores)
    nominal = MappingEvaluator(graph, platform, ser_model=SERModel())
    doubled = MappingEvaluator(
        graph, platform, ser_model=SERModel().with_reference_rate(2e-9)
    )
    scaling = (1,) * mapping.num_cores
    a = nominal.evaluate(mapping, scaling).expected_seus
    b = doubled.evaluate(mapping, scaling).expected_seus
    assert a >= 0
    assert math.isclose(b, 2 * a, rel_tol=1e-9) or (a == b == 0)


# ---------------------------------------------------------------------------
# Mapping move properties
# ---------------------------------------------------------------------------


@given(graph_and_mapping(), st.data())
@settings(max_examples=40, deadline=None)
def test_move_is_reversible(data, rnd):
    graph, mapping = data
    name = rnd.draw(st.sampled_from(sorted(graph.task_names())))
    original_core = mapping.core_of(name)
    target = rnd.draw(st.integers(min_value=0, max_value=mapping.num_cores - 1))
    assert mapping.move(name, target).move(name, original_core) == mapping


@given(graph_and_mapping())
@settings(max_examples=40, deadline=None)
def test_mapping_hash_consistency(data):
    _, mapping = data
    clone = Mapping(mapping.as_dict(), mapping.num_cores)
    assert clone == mapping
    assert hash(clone) == hash(mapping)
