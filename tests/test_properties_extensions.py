"""Property-based tests for the extension modules."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.faults.reliability import failure_probability, mean_executions_to_failure
from repro.optim.pareto import dominates, pareto_front


class _Point:
    """A minimal stand-in exposing the two default Pareto axes."""

    __slots__ = ("power_mw", "expected_seus")

    def __init__(self, power_mw: float, expected_seus: float) -> None:
        self.power_mw = power_mw
        self.expected_seus = expected_seus

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Point({self.power_mw}, {self.expected_seus})"


points_strategy = st.lists(
    st.builds(
        _Point,
        st.floats(min_value=0.1, max_value=100, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


@given(points_strategy)
@settings(max_examples=80, deadline=None)
def test_front_members_are_mutually_non_dominated(points):
    front = pareto_front(points)
    assert front
    for a in front:
        for b in front:
            assert not dominates(a, b)


@given(points_strategy)
@settings(max_examples=80, deadline=None)
def test_every_point_dominated_by_or_on_front(points):
    front = pareto_front(points)
    for point in points:
        on_front = any(
            abs(point.power_mw - member.power_mw) < 1e-12
            and abs(point.expected_seus - member.expected_seus) < 1e-12
            for member in front
        )
        dominated = any(dominates(member, point) for member in front)
        assert on_front or dominated


@given(points_strategy)
@settings(max_examples=50, deadline=None)
def test_front_is_idempotent(points):
    front = pareto_front(points)
    assert pareto_front(front) == front


@given(points_strategy, points_strategy)
@settings(max_examples=50, deadline=None)
def test_front_of_union_within_union_of_fronts(points_a, points_b):
    union_front = pareto_front(list(points_a) + list(points_b))
    candidates = pareto_front(points_a) + pareto_front(points_b)
    for member in union_front:
        assert any(
            abs(member.power_mw - candidate.power_mw) < 1e-12
            and abs(member.expected_seus - candidate.expected_seus) < 1e-12
            for candidate in candidates
        )


@given(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_failure_probability_in_unit_interval_and_monotone(gamma, avf):
    p = failure_probability(gamma, avf)
    assert 0.0 <= p <= 1.0
    assert failure_probability(gamma + 1.0, avf) >= p


@given(
    st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_mtef_is_consistent_inverse(gamma, avf):
    p = failure_probability(gamma, avf)
    mtef = mean_executions_to_failure(gamma, avf)
    assert math.isclose(mtef * p, 1.0, rel_tol=1e-9)
