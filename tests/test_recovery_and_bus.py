"""Tests for the recovery-slack analysis and the shared-bus comm model."""


import pytest

from repro.faults.recovery import (
    RecoveryAnalysis,
    analyze_recovery,
    max_reexecutions,
    recovery_slack_s,
    tolerable_task_set,
)
from repro.mapping import Mapping
from repro.sched import ListScheduler
from repro.taskgraph import TaskGraph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


class TestRecovery:
    @pytest.fixture
    def point(self, mpeg2_evaluator, rr_mapping4):
        return mpeg2_evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))

    def test_slack_formula(self, point):
        slack = recovery_slack_s(point, MPEG2_DEADLINE_S)
        assert slack == pytest.approx(MPEG2_DEADLINE_S - point.makespan_s)

    def test_slack_negative_when_late(self, point):
        assert recovery_slack_s(point, point.makespan_s / 2) < 0

    def test_max_reexecutions_consistent(self, point):
        count = max_reexecutions(point, MPEG2_DEADLINE_S)
        worst = max(entry.duration_s for entry in point.schedule)
        slack = MPEG2_DEADLINE_S - point.makespan_s
        assert count == int(slack / worst)

    def test_no_reexecution_when_late(self, point):
        assert max_reexecutions(point, point.makespan_s * 0.9) == 0
        assert tolerable_task_set(point, point.makespan_s * 0.9) == []

    def test_tolerable_set_fits_slack(self, point):
        tasks = tolerable_task_set(point, MPEG2_DEADLINE_S)
        durations = {entry.name: entry.duration_s for entry in point.schedule}
        total = sum(durations[name] for name in tasks)
        assert total <= recovery_slack_s(point, MPEG2_DEADLINE_S) + 1e-9

    def test_tolerable_set_is_worst_first(self, point):
        tasks = tolerable_task_set(point, MPEG2_DEADLINE_S)
        durations = {entry.name: entry.duration_s for entry in point.schedule}
        values = [durations[name] for name in tasks]
        assert values == sorted(values, reverse=True)

    def test_analyze_bundle(self, point):
        analysis = analyze_recovery(point, MPEG2_DEADLINE_S)
        assert isinstance(analysis, RecoveryAnalysis)
        assert analysis.slack_s == pytest.approx(
            recovery_slack_s(point, MPEG2_DEADLINE_S)
        )
        assert 0.0 <= analysis.slack_fraction < 1.0
        assert analysis.tolerates_any_single_fault == (
            analysis.worst_case_reexecutions >= 1
        )

    def test_rejects_bad_deadline(self, point):
        with pytest.raises(ValueError):
            recovery_slack_s(point, 0.0)

    def test_requires_schedule(self, point):
        from dataclasses import replace

        stripped = replace(point, schedule=None)
        with pytest.raises(ValueError):
            max_reexecutions(stripped, MPEG2_DEADLINE_S)


def _two_transfer_graph() -> TaskGraph:
    """Two producers on different cores feeding one consumer."""
    g = TaskGraph(name="bus")
    g.add_task("p1", 1000)
    g.add_task("p2", 1000)
    g.add_task("c", 1000)
    g.add_edge("p1", "c", 600)
    g.add_edge("p2", "c", 600)
    return g


class TestSharedBus:
    def test_transfers_serialize_on_bus(self):
        g = _two_transfer_graph()
        mapping = Mapping({"p1": 0, "p2": 1, "c": 2}, 3)
        frequency = 1e6
        dedicated = ListScheduler(g, [frequency] * 3).schedule(mapping)
        bus = ListScheduler(
            g, [frequency] * 3, comm_model="shared-bus", bus_frequency_hz=frequency
        ).schedule(mapping)
        # Dedicated: both receives charge the consumer -> c runs
        # 1000 + 1200 cycles after producers finish at 1 ms.
        assert dedicated.makespan_s() == pytest.approx((1000 + 1200 + 1000) / frequency)
        # Shared bus: transfers serialize (0.6 ms each) after the
        # producers, then c computes 1 ms: 1 + 0.6 + 0.6 + 1 = 3.2 ms.
        assert bus.makespan_s() == pytest.approx(3.2e-3)

    def test_bus_model_zeroes_receive_cycles(self):
        g = _two_transfer_graph()
        mapping = Mapping({"p1": 0, "p2": 1, "c": 2}, 3)
        bus = ListScheduler(g, [1e6] * 3, comm_model="shared-bus").schedule(mapping)
        assert bus.entry("c").receive_cycles == 0

    def test_same_core_free_in_both_models(self):
        g = _two_transfer_graph()
        mapping = Mapping.all_on_core(g, 2, 0)
        for model in ("dedicated", "shared-bus"):
            schedule = ListScheduler(g, [1e6] * 2, comm_model=model).schedule(mapping)
            assert schedule.makespan_s() == pytest.approx(3e-3)

    def test_schedule_still_verifies(self, mpeg2, rr_mapping4):
        schedule = ListScheduler(
            mpeg2, [2e8] * 4, comm_model="shared-bus"
        ).schedule(rr_mapping4)
        schedule.verify(mpeg2, rr_mapping4)

    def test_bus_contention_penalizes_spreading(self, mpeg2):
        spread = Mapping.round_robin(mpeg2, 4)
        localized = Mapping.all_on_core(mpeg2, 4, 0)
        scheduler = ListScheduler(
            mpeg2, [2e8] * 4, comm_model="shared-bus", bus_frequency_hz=2e7
        )  # slow bus
        spread_tm = scheduler.schedule(spread).makespan_s()
        localized_tm = scheduler.schedule(localized).makespan_s()
        # With a slow enough bus, spreading loses its advantage.
        dedicated_spread = ListScheduler(mpeg2, [2e8] * 4).schedule(spread)
        assert spread_tm > dedicated_spread.makespan_s()
        assert localized_tm == pytest.approx(
            ListScheduler(mpeg2, [2e8] * 4).schedule(localized).makespan_s()
        )

    def test_default_bus_clock_is_fastest_core(self, mpeg2):
        scheduler = ListScheduler(mpeg2, [1e8, 2e8], comm_model="shared-bus")
        assert scheduler._bus_frequency == pytest.approx(2e8)

    def test_rejects_unknown_model(self, mpeg2):
        with pytest.raises(ValueError):
            ListScheduler(mpeg2, [1e8], comm_model="telepathy")

    def test_rejects_bad_bus_frequency(self, mpeg2):
        with pytest.raises(ValueError):
            ListScheduler(mpeg2, [1e8], comm_model="shared-bus", bus_frequency_hz=0.0)
