"""The CI perf-regression gate (benchmarks/check_regression.py).

Drives the gate as a CLI on synthetic pytest-benchmark JSON payloads:
pass on flat numbers, fail on a >25% regression of a gated
(scheduling/evaluation) row, ignore ungated rows, bootstrap when the
baseline is missing, and refresh with ``--update``.  The synthetic
regression test is the in-repo demonstration that the gate actually
fails CI when the hot path slows down.
"""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATE = os.path.join(REPO_ROOT, "benchmarks", "check_regression.py")


def _payload(**medians):
    return {
        "benchmarks": [
            {"name": name, "stats": {"median": value, "mean": value, "min": value}}
            for name, value in medians.items()
        ]
    }


def _write(path, **medians):
    with open(path, "w") as handle:
        json.dump(_payload(**medians), handle)
    return str(path)


def _run(*argv):
    return subprocess.run(
        [sys.executable, GATE, *argv], capture_output=True, text=True
    )


BASELINE_ROWS = dict(
    test_bench_list_scheduler_mpeg2=20e-6,
    test_bench_design_point_evaluation=40e-6,
    test_bench_evaluate_batch_loop=2800e-6,
    test_bench_simulation_and_injection=900e-6,  # ungated
)


@pytest.fixture
def baseline(tmp_path):
    return _write(tmp_path / "baseline.json", **BASELINE_ROWS)


class TestGate:
    def test_passes_on_flat_numbers(self, tmp_path, baseline):
        latest = _write(tmp_path / "latest.json", **BASELINE_ROWS)
        proc = _run(latest, "--baseline", baseline)
        assert proc.returncode == 0, proc.stdout
        assert "perf gate passed" in proc.stdout

    def test_passes_within_tolerance(self, tmp_path, baseline):
        rows = dict(BASELINE_ROWS)
        rows["test_bench_list_scheduler_mpeg2"] *= 1.20  # +20% < 25%
        latest = _write(tmp_path / "latest.json", **rows)
        proc = _run(latest, "--baseline", baseline)
        assert proc.returncode == 0, proc.stdout

    def test_fails_on_synthetic_regression(self, tmp_path, baseline):
        # The acceptance-criteria demonstration: a 30% slowdown on a
        # scheduling row must fail the gate.
        rows = dict(BASELINE_ROWS)
        rows["test_bench_list_scheduler_mpeg2"] *= 1.30
        latest = _write(tmp_path / "latest.json", **rows)
        proc = _run(latest, "--baseline", baseline)
        assert proc.returncode == 1, proc.stdout
        assert "REGRESSION" in proc.stdout
        assert "test_bench_list_scheduler_mpeg2" in proc.stdout.split("FAIL")[-1]

    def test_ungated_rows_never_fail(self, tmp_path, baseline):
        rows = dict(BASELINE_ROWS)
        rows["test_bench_simulation_and_injection"] *= 3.0
        latest = _write(tmp_path / "latest.json", **rows)
        proc = _run(latest, "--baseline", baseline)
        assert proc.returncode == 0, proc.stdout

    def test_tolerance_flag(self, tmp_path, baseline):
        rows = dict(BASELINE_ROWS)
        rows["test_bench_design_point_evaluation"] *= 1.20
        latest = _write(tmp_path / "latest.json", **rows)
        proc = _run(latest, "--baseline", baseline, "--tolerance", "0.1")
        assert proc.returncode == 1, proc.stdout

    def test_missing_gated_row_fails(self, tmp_path, baseline):
        rows = dict(BASELINE_ROWS)
        del rows["test_bench_evaluate_batch_loop"]
        latest = _write(tmp_path / "latest.json", **rows)
        proc = _run(latest, "--baseline", baseline)
        assert proc.returncode == 1, proc.stdout
        assert "MISSING" in proc.stdout

    def test_new_rows_pass_ungated(self, tmp_path, baseline):
        rows = dict(BASELINE_ROWS)
        rows["test_bench_evaluate_batch_vectorized[64]"] = 800e-6
        latest = _write(tmp_path / "latest.json", **rows)
        proc = _run(latest, "--baseline", baseline)
        assert proc.returncode == 0, proc.stdout
        assert "new row" in proc.stdout

    def test_missing_baseline_bootstraps(self, tmp_path):
        latest = _write(tmp_path / "latest.json", **BASELINE_ROWS)
        absent = str(tmp_path / "no_baseline.json")
        proc = _run(latest, "--baseline", absent)
        assert proc.returncode == 0, proc.stdout
        assert "first run" in proc.stdout
        assert not os.path.exists(absent)
        proc = _run(latest, "--baseline", absent, "--update")
        assert proc.returncode == 0, proc.stdout
        assert os.path.exists(absent)

    def test_update_refreshes_baseline(self, tmp_path, baseline):
        rows = {name: value * 0.5 for name, value in BASELINE_ROWS.items()}
        latest = _write(tmp_path / "latest.json", **rows)
        proc = _run(latest, "--baseline", baseline, "--update")
        assert proc.returncode == 0, proc.stdout
        with open(baseline) as handle:
            refreshed = json.load(handle)
        medians = {
            row["name"]: row["stats"]["median"]
            for row in refreshed["benchmarks"]
        }
        assert medians == rows

    def test_committed_baseline_exists_and_gates_real_rows(self):
        # The repo ships an armed gate: a committed baseline whose
        # gated rows include the scheduler and batch-evaluation
        # benchmarks bench_micro actually produces.
        path = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")
        assert os.path.exists(path), "benchmarks/baseline.json must be committed"
        with open(path) as handle:
            names = {row["name"] for row in json.load(handle)["benchmarks"]}
        assert any("list_scheduler" in name for name in names)
        assert any("evaluate_batch_vectorized" in name for name in names)
        assert any("evaluate_batch_loop" in name for name in names)
