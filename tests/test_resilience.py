"""Fault-tolerant execution: retry policies, chaos injection, recovery.

Covers the :mod:`repro.exec.resilience` primitives (deterministic
backoff schedules, the seeded fault-injecting transport), the
executor-level retry loop (injected crashes, real worker death with
pool rebuild, leaf deadlines), and the house invariant under fire:
a grid that loses a process-pool worker mid-flight still reassembles
results byte-identical to an undisturbed run.
"""

import os
from dataclasses import dataclass

import pytest

from repro.exec import (
    CHAOS_ENV,
    DagExecutor,
    ExecutorStats,
    FaultInjectingTransport,
    FaultPlan,
    InjectedTransientError,
    InjectedWorkerCrash,
    LeafTimeoutError,
    PoolTransport,
    RetryPolicy,
    SerialTransport,
    resolve_backend,
)
from repro.experiments import ExperimentProfile, run_table3
from repro.experiments.common import run_cells
from repro.taskgraph import RandomGraphConfig, random_task_graph


def _square(value):
    return value * value


#: No-sleep policy for tests that only care about retry *behaviour*.
FAST_RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)


# ---------------------------------------------------------------------------
# RetryPolicy: deterministic backoff schedules
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_schedule_is_deterministic_and_seeded(self):
        policy = RetryPolicy(seed=3)
        assert policy.schedule("cell:4") == policy.schedule("cell:4")
        assert policy.schedule("cell:4") != policy.schedule("cell:5")
        assert policy.schedule() == RetryPolicy(seed=3).schedule()
        assert RetryPolicy(seed=1).schedule() != RetryPolicy(seed=2).schedule()

    def test_schedule_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay_s=0.1,
            backoff_factor=2.0,
            max_delay_s=60.0,
            jitter=0.1,
        )
        schedule = policy.schedule("k")
        assert len(schedule) == 4  # one entry per retry, not per attempt
        for attempt, delay in enumerate(schedule, start=1):
            nominal = 0.1 * 2.0 ** (attempt - 1)
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, max_delay_s=2.0, jitter=0.0
        )
        assert policy.delay_s(8) == 2.0

    def test_no_jitter_is_exact(self):
        policy = RetryPolicy(base_delay_s=0.5, backoff_factor=3.0, jitter=0.0)
        assert policy.delay_s(1) == 0.5
        assert policy.delay_s(2) == 1.5

    def test_no_retry_policy(self):
        policy = RetryPolicy.no_retry()
        assert policy.max_attempts == 1
        assert policy.schedule() == []

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="leaf_timeout_s"):
            RetryPolicy(leaf_timeout_s=0.0)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s(0)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(InjectedWorkerCrash("x"))
        assert policy.retryable(InjectedTransientError("x"))
        assert policy.retryable(LeafTimeoutError("x"))
        from concurrent.futures import BrokenExecutor
        from concurrent.futures.process import BrokenProcessPool

        assert policy.retryable(BrokenExecutor("x"))
        assert policy.retryable(BrokenProcessPool("x"))
        # A leaf's own exception is deterministic — never retried.
        assert not policy.retryable(ValueError("x"))
        assert not policy.retryable(KeyboardInterrupt())


# ---------------------------------------------------------------------------
# FaultPlan: the chaos spec
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_from_spec_full(self):
        plan = FaultPlan.from_spec(
            "crash=0.05, delay=0.1, error=0.02, delay_s=0.5, seed=7,"
            " max_faults=40"
        )
        assert plan == FaultPlan(
            seed=7,
            crash_rate=0.05,
            error_rate=0.02,
            delay_rate=0.1,
            delay_s=0.5,
            max_faults=40,
        )

    def test_from_spec_rejects_bad_input(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("explode=1")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_spec("crash")
        with pytest.raises(ValueError, match="bad fault spec value"):
            FaultPlan.from_spec("crash=lots")
        with pytest.raises(ValueError, match="sum to at most 1"):
            FaultPlan(crash_rate=0.6, error_rate=0.6)
        with pytest.raises(ValueError, match="crash_rate"):
            FaultPlan(crash_rate=1.5)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "crash=0.1,seed=3")
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.crash_rate == 0.1 and plan.seed == 3


# ---------------------------------------------------------------------------
# FaultInjectingTransport: seeded, reproducible chaos
# ---------------------------------------------------------------------------


class TestFaultInjectingTransport:
    def _run(self, plan, count=60):
        transport = FaultInjectingTransport(SerialTransport(), plan)
        # Deep retry budget: at the aggressive rates used here a leaf
        # occasionally draws several faults in a row, and exhaustion is
        # not what these tests measure.
        policy = RetryPolicy(max_attempts=25, base_delay_s=0.0, jitter=0.0)
        with DagExecutor(transport, retry_policy=policy) as executor:
            results = executor.map(_square, list(range(count)))
        return transport, executor, results

    def test_same_seed_same_faults(self):
        plan = FaultPlan(
            seed=11, crash_rate=0.2, error_rate=0.1, delay_rate=0.1, delay_s=0.0
        )
        first, _, results_a = self._run(plan)
        second, _, results_b = self._run(plan)
        assert first.injected  # the rates actually injected something
        assert first.injected == second.injected
        assert results_a == results_b == [n * n for n in range(60)]

    def test_different_seed_different_faults(self):
        base = FaultPlan(seed=1, crash_rate=0.3, delay_rate=0.2, delay_s=0.0)
        first, _, _ = self._run(base)
        second, _, _ = self._run(
            FaultPlan(seed=2, crash_rate=0.3, delay_rate=0.2, delay_s=0.0)
        )
        assert first.injected != second.injected

    def test_zero_rates_are_pure_passthrough(self):
        transport, executor, results = self._run(FaultPlan(seed=5))
        assert transport.injected == []
        assert executor.stats.retries == 0
        assert results == [n * n for n in range(60)]

    def test_max_faults_caps_injection(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faults=3)
        transport = FaultInjectingTransport(SerialTransport(), plan)
        with DagExecutor(transport, retry_policy=FAST_RETRY) as executor:
            # The first three submissions crash (spending the cap);
            # after that everything passes through untouched.
            assert executor.map(_square, list(range(10))) == [
                n * n for n in range(10)
            ]
        assert len(transport.injected) == 3
        assert executor.stats.retries == 3


# ---------------------------------------------------------------------------
# Executor-level retry behaviour
# ---------------------------------------------------------------------------


class TestExecutorRetries:
    def test_injected_crashes_recovered_with_stats(self):
        plan = FaultPlan(seed=7, crash_rate=0.25, error_rate=0.1)
        transport = FaultInjectingTransport(SerialTransport(), plan)
        with DagExecutor(transport, retry_policy=FAST_RETRY) as executor:
            results = executor.map(_square, list(range(40)))
        assert results == [n * n for n in range(40)]
        stats = executor.stats
        assert stats.retries > 0
        assert stats.tasks == 40
        assert stats.submitted == 40 + stats.retries

    def test_retry_exhaustion_raises_the_fault(self):
        plan = FaultPlan(seed=1, crash_rate=1.0)
        transport = FaultInjectingTransport(SerialTransport(), plan)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        with DagExecutor(transport, retry_policy=policy) as executor:
            with pytest.raises(InjectedWorkerCrash):
                executor.map(_square, [1])
        assert executor.stats.retries == 2  # attempts 2 and 3

    def test_leaf_bugs_are_never_retried(self):
        def explode(value):
            raise ValueError("leaf bug")

        with DagExecutor(SerialTransport(), retry_policy=FAST_RETRY) as executor:
            with pytest.raises(ValueError, match="leaf bug"):
                executor.map(explode, [1, 2])
        assert executor.stats.retries == 0

    def test_no_retry_policy_fails_fast(self):
        plan = FaultPlan(seed=1, crash_rate=1.0)
        transport = FaultInjectingTransport(SerialTransport(), plan)
        with DagExecutor(
            transport, retry_policy=RetryPolicy.no_retry()
        ) as executor:
            with pytest.raises(InjectedWorkerCrash):
                executor.map(_square, [1])
        assert executor.stats.retries == 0

    def test_chaos_env_arms_from_spec(self, monkeypatch):
        # max_faults=3 < max_attempts, so no leaf can ever exhaust its
        # retries however the dice land.
        monkeypatch.setenv(CHAOS_ENV, "crash=0.5,seed=9,max_faults=3")
        with DagExecutor.from_spec("serial", retry_policy=FAST_RETRY) as executor:
            assert isinstance(executor.transport, FaultInjectingTransport)
            assert executor.map(_square, list(range(30))) == [
                n * n for n in range(30)
            ]
        assert executor.transport.injected
        monkeypatch.delenv(CHAOS_ENV)
        with DagExecutor.from_spec("serial") as executor:
            assert isinstance(executor.transport, SerialTransport)

    def test_leaf_timeout_retries_then_succeeds(self, tmp_path):
        marker = tmp_path / "slow-once"

        def slow_once(value):
            if not marker.exists():
                marker.touch()
                import time

                time.sleep(1.0)
            return value * 10

        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.0, jitter=0.0, leaf_timeout_s=0.15
        )
        transport = PoolTransport("thread", max_workers=2)
        with DagExecutor(transport, retry_policy=policy) as executor:
            assert executor.map(slow_once, [7]) == [70]
        assert executor.stats.retries >= 1

    def test_leaf_timeout_exhaustion_raises(self):
        def always_slow(value):
            import time

            time.sleep(0.5)
            return value

        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.0, jitter=0.0, leaf_timeout_s=0.1
        )
        transport = PoolTransport("thread", max_workers=2)
        with DagExecutor(transport, retry_policy=policy) as executor:
            with pytest.raises(LeafTimeoutError, match="deadline"):
                executor.map(always_slow, [1])

    def test_stats_roundtrip_with_resilience_counters(self):
        stats = ExecutorStats(
            submitted=12,
            tasks=10,
            steals=1,
            queue_high_water=4,
            retries=2,
            worker_restarts=1,
            per_worker={"w0": 10},
        )
        raw = stats.to_dict()
        assert raw["retries"] == 2
        assert raw["worker_restarts"] == 1
        assert ExecutorStats.from_dict(raw) == stats
        # Legacy manifests (pre-resilience) load with zero defaults.
        legacy = {k: v for k, v in raw.items() if k not in ("retries", "worker_restarts")}
        loaded = ExecutorStats.from_dict(legacy)
        assert loaded.retries == 0 and loaded.worker_restarts == 0
        assert "2 retries" in stats.summary()
        assert "retries" not in ExecutorStats(tasks=1).summary()


# ---------------------------------------------------------------------------
# Real worker death: a process-pool worker dies mid-batch
# ---------------------------------------------------------------------------


def _die_once_leaf(item):
    """Return value*3, but hard-kill the worker process on first sight.

    The marker file makes the death a one-shot: the retried leaf (and
    every later attempt) completes normally — exactly the shape of a
    transient worker loss.
    """
    value, marker = item
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("dying\n")
        os._exit(1)  # SIGKILL-equivalent: no exception, no cleanup
    return value * 3


@dataclass(frozen=True)
class _MapCell:
    """A grid cell that fans its work out through the ambient dag backend."""

    profile: ExperimentProfile
    base: int
    marker: str = ""

    def run(self):
        backend = resolve_backend("dag")
        items = [
            (self.base + i, self.marker if (i == 1 and self.marker) else None)
            for i in range(6)
        ]
        return backend.map(_die_once_leaf, items)


class TestWorkerDeathRecovery:
    def test_map_survives_worker_death(self, tmp_path):
        marker = str(tmp_path / "killed")
        items = [(n, marker if n == 2 else None) for n in range(8)]
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01, jitter=0.0)
        transport = PoolTransport("process", max_workers=2)
        with DagExecutor(transport, retry_policy=policy) as executor:
            results = executor.map(_die_once_leaf, items)
        assert results == [n * 3 for n in range(8)]
        stats = executor.stats
        assert stats.retries >= 1
        assert stats.worker_restarts >= 1
        assert os.path.exists(marker)

    def test_grid_byte_identical_after_worker_death(self, tmp_path):
        profile = ExperimentProfile(
            name="tiny", search_iterations=50, sa_iterations=50, seed=0
        )
        def cells(prof, marker):
            return [
                _MapCell(prof, base=10 * i, marker=marker if i == 1 else "")
                for i in range(3)
            ]

        serial_profile = profile.with_exec_plan("dag:serial")
        reference = run_cells(
            cells(serial_profile, ""), serial_profile, label="refgrid"
        )
        marker = str(tmp_path / "killed-in-grid")
        chaos_profile = profile.with_exec_plan("dag:process").with_max_workers(2)
        recovered = run_cells(
            cells(chaos_profile, marker), chaos_profile, label="killgrid"
        )
        assert recovered == reference
        assert os.path.exists(marker)  # the worker really died


# ---------------------------------------------------------------------------
# The house invariant under chaos: byte-identical experiment reports
# ---------------------------------------------------------------------------


class TestChaosDeterminism:
    def test_table3_report_byte_identical_under_chaos(self, monkeypatch):
        profile = ExperimentProfile(
            name="tiny",
            search_iterations=150,
            sa_iterations=300,
            fig3_mappings=40,
            stop_after_feasible=2,
            seed=0,
        )
        config = RandomGraphConfig(num_tasks=10)
        applications = [("tiny", random_task_graph(config, seed=3), config.deadline_s)]
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        reference = run_table3(
            profile, core_counts=(2, 3), applications=applications
        )
        monkeypatch.setenv(
            CHAOS_ENV,
            "crash=0.05,error=0.05,delay=0.1,delay_s=0.001,seed=13,max_faults=40",
        )
        chaotic = run_table3(
            profile.with_exec_plan("dag:thread").with_max_workers(3),
            core_counts=(2, 3),
            applications=applications,
        )
        assert chaotic.format_table() == reference.format_table()
        assert chaotic.shape_checks() == reference.shape_checks()
