"""The streaming run store: persistence, crash signatures, exact resume.

The acceptance contract: a run interrupted after k of N cells and
resumed produces **byte-identical** reports to an uninterrupted run,
on the serial and process backends alike — and the report rendered
from a fully resumed store matches the in-memory path for every
experiment module.
"""

import json
import pickle

import pytest

from repro.exec.backends import SerialBackend, ThreadBackend
from repro.experiments import (
    ExperimentProfile,
    run_fig3,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table3,
)
from repro.experiments.common import run_cells
from repro.experiments.runner import render_report, run_all
from repro.store import (
    MANIFEST_NAME,
    RECORDS_NAME,
    RunStore,
    StoreMismatchError,
    cell_key,
    fingerprint_payload,
    iter_manifests,
    read_manifest,
    scan_records,
)
from repro.taskgraph import RandomGraphConfig, random_task_graph


# Parts of this module deliberately exercise the deprecated per-cut
# pools — they remain the legacy-parity reference paths.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny",
        search_iterations=150,
        sa_iterations=300,
        fig3_mappings=40,
        stop_after_feasible=2,
        seed=0,
    )


@pytest.fixture(scope="module")
def tiny_app():
    config = RandomGraphConfig(num_tasks=12)
    return random_task_graph(config, seed=3), config.deadline_s


def records_file(store_dir, label):
    return store_dir / label / RECORDS_NAME


def manifest_file(store_dir, label):
    return store_dir / label / MANIFEST_NAME


# ---------------------------------------------------------------------------
# Fingerprint
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_stable_across_backend_choices(self, tiny_profile):
        """Execution fields never change results, so never the print."""
        base = tiny_profile.result_fingerprint()
        assert (
            tiny_profile.with_backend(
                exec_backend="process",
                experiment_backend="thread",
                restart_backend="auto",
            ).result_fingerprint()
            == base
        )
        assert tiny_profile.with_max_workers(2).result_fingerprint() == base
        assert tiny_profile.with_store("/tmp/x", resume=True).result_fingerprint() == base

    def test_sensitive_to_result_fields(self, tiny_profile):
        base = tiny_profile.result_fingerprint()
        assert tiny_profile.with_seed(1).result_fingerprint() != base
        from dataclasses import replace

        assert (
            replace(tiny_profile, search_iterations=151).result_fingerprint()
            != base
        )
        assert replace(tiny_profile, batch_eval=8).result_fingerprint() != base

    def test_payload_hash_is_order_insensitive(self):
        assert fingerprint_payload({"a": 1, "b": 2}) == fingerprint_payload(
            {"b": 2, "a": 1}
        )
        assert fingerprint_payload({"a": 1}) != fingerprint_payload({"a": 2})


class TestCellKey:
    def test_scalars_and_graphs_contribute(self, tiny_profile, tiny_app):
        from repro.experiments.table3 import _Table3CellJob

        graph, deadline_s = tiny_app
        job = _Table3CellJob(
            label="tiny",
            graph=graph,
            deadline_s=deadline_s,
            num_cores=3,
            seed_offset=7,
            profile=tiny_profile,
        )
        key = cell_key(job, 4)
        assert key.startswith("004:_Table3CellJob(")
        assert "label=tiny" in key
        assert "num_cores=3" in key
        assert graph.name in key  # graph identity, not object repr
        assert "profile=" not in key  # covered by the fingerprint instead

    def test_graph_content_changes_the_key(self, tiny_profile):
        """Same graph name + size, different edges => different identity.

        Without the content digest a caller could edit a graph in
        place and silently resume stale results computed for the old
        one.
        """
        from repro.experiments.fig11 import _Fig11LevelJob
        from repro.taskgraph import TaskGraph

        def build(extra_edge):
            graph = TaskGraph(name="twin")
            for name in ("a", "b", "c"):
                graph.add_task(name, cycles=1000)
            graph.add_edge("a", "b", comm_cycles=10)
            if extra_edge:
                graph.add_edge("b", "c", comm_cycles=10)
            return graph

        keys = {
            cell_key(
                _Fig11LevelJob(
                    graph=build(extra),
                    deadline_s=1.0,
                    num_cores=2,
                    num_levels=3,
                    profile=tiny_profile,
                ),
                0,
            )
            for extra in (False, True)
        }
        assert len(keys) == 2

    def test_index_disambiguates_identical_cells(self, tiny_profile, tiny_app):
        from repro.experiments.table3 import _Table3CellJob

        graph, deadline_s = tiny_app
        job = _Table3CellJob(
            label="tiny",
            graph=graph,
            deadline_s=deadline_s,
            num_cores=3,
            seed_offset=7,
            profile=tiny_profile,
        )
        assert cell_key(job, 0) != cell_key(job, 1)


# ---------------------------------------------------------------------------
# RunStore primitives
# ---------------------------------------------------------------------------


class TestRunStore:
    KEYS = ("000:a", "001:b", "002:c")

    def open_store(self, tmp_path, resume=False, fingerprint="f" * 16, keys=KEYS):
        return RunStore.open(
            tmp_path / "run",
            label="run",
            fingerprint=fingerprint,
            keys=keys,
            profile_summary={"name": "tiny", "seed": 0},
            resume=resume,
        )

    def test_roundtrip(self, tmp_path):
        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, {"value": 1})
        store.record_result("001:b", 1, [1, 2, 3])
        store.finalize()

        resumed = self.open_store(tmp_path, resume=True)
        loaded = resumed.load_results()
        assert loaded["000:a"].payload == {"value": 1}
        assert loaded["001:b"].payload == [1, 2, 3]
        assert "002:c" not in loaded
        assert resumed.statuses() == {
            "000:a": "done",
            "001:b": "done",
            "002:c": "pending",
        }

    def test_manifest_tracks_completion(self, tmp_path):
        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, 1)
        manifest = read_manifest(store.manifest_path)
        assert manifest["completed"] == 1
        assert manifest["total"] == 3
        assert manifest["run_status"] == "running"
        assert manifest["status"]["000:a"] == "done"
        store.record_result("001:b", 1, 2)
        store.record_result("002:c", 2, 3)
        store.finalize()
        assert read_manifest(store.manifest_path)["run_status"] == "complete"

    def test_torn_tail_is_discarded(self, tmp_path):
        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, 1)
        store.record_result("001:b", 1, 2)
        text = store.records_path.read_text()
        lines = text.splitlines(keepends=True)
        store.records_path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])

        resumed = self.open_store(tmp_path, resume=True)
        loaded = resumed.load_results()
        assert set(loaded) == {"000:a"}  # the torn record re-runs

    def test_error_records_resurface_as_failed(self, tmp_path):
        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, 1)
        store.record_error("001:b", 1, "ValueError: boom")
        store.finalize()
        assert read_manifest(store.manifest_path)["run_status"] == "failed"

        resumed = self.open_store(tmp_path, resume=True)
        assert set(resumed.load_results()) == {"000:a"}
        assert resumed.statuses()["001:b"] == "failed"

    def test_resume_rejects_other_fingerprint(self, tmp_path):
        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, 1)
        with pytest.raises(StoreMismatchError, match="fingerprint"):
            self.open_store(tmp_path, resume=True, fingerprint="0" * 16)

    def test_resume_rejects_other_grid(self, tmp_path):
        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, 1)
        with pytest.raises(StoreMismatchError, match="grid"):
            self.open_store(tmp_path, resume=True, keys=("000:a", "001:z"))

    def test_resume_with_lost_manifest_refuses_to_destroy_records(self, tmp_path):
        from repro.store import RunStoreError

        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, 1)
        store.manifest_path.unlink()  # manifest lost; records survive
        with pytest.raises(RunStoreError, match="missing or unreadable"):
            self.open_store(tmp_path, resume=True)
        # the completed work was NOT deleted
        assert store.records_path.exists()
        assert "000:a" in store.records_path.read_text()

    def test_fresh_open_discards_stale_records(self, tmp_path):
        store = self.open_store(tmp_path)
        store.record_result("000:a", 0, 1)
        fresh = self.open_store(tmp_path, resume=False)
        assert fresh.load_results() == {}

    def test_iter_manifests(self, tmp_path):
        for label in ("beta", "alpha"):
            RunStore.open(
                tmp_path / label,
                label=label,
                fingerprint="f" * 16,
                keys=("000:x",),
                resume=False,
            )
        found = list(iter_manifests(tmp_path))
        assert [manifest["label"] for _path, manifest in found] == ["alpha", "beta"]
        # A single run directory works too.
        single = list(iter_manifests(tmp_path / "alpha"))
        assert len(single) == 1 and single[0][1]["label"] == "alpha"


# ---------------------------------------------------------------------------
# map_stream
# ---------------------------------------------------------------------------


class TestMapStream:
    @pytest.mark.parametrize("backend_cls", [SerialBackend, ThreadBackend])
    def test_callback_covers_every_item_and_order_is_kept(self, backend_cls):
        backend = backend_cls()
        seen = {}
        try:
            results = backend.map_stream(
                lambda x: x * 10, [1, 2, 3, 4], callback=seen.__setitem__
            )
        finally:
            backend.close()
        assert results == [10, 20, 30, 40]
        assert seen == {0: 10, 1: 20, 2: 30, 3: 40}

    def test_no_callback_matches_map(self):
        backend = SerialBackend()
        assert backend.map_stream(str, [1, 2]) == backend.map(str, [1, 2])

    def test_single_item_short_circuit(self):
        backend = ThreadBackend()
        seen = {}
        try:
            assert backend.map_stream(str, [7], callback=seen.__setitem__) == ["7"]
        finally:
            backend.close()
        assert seen == {0: "7"}


# ---------------------------------------------------------------------------
# run_cells streaming + failure persistence
# ---------------------------------------------------------------------------


from dataclasses import dataclass  # noqa: E402 - test-local cell definitions


@dataclass(frozen=True)
class _SquareJob:
    value: int
    profile: ExperimentProfile

    def run(self) -> int:
        return self.value * self.value


@dataclass(frozen=True)
class _FlakyJob:
    """Fails while a sentinel file exists — a transient, external fault.

    The cell's fields (and hence its key) are identical across the
    original and the resumed run; only the external sentinel changes,
    so the resume re-dispatches the *same* cell and it heals — the
    flaky-cell retry scenario.
    """

    value: int
    sentinel: str
    profile: ExperimentProfile

    def run(self) -> int:
        import os

        if self.value == 1 and os.path.exists(self.sentinel):
            raise ValueError(f"cell {self.value} exploded")
        return self.value


class TestRunCellsStore:
    def test_streams_one_record_per_cell(self, tmp_path, tiny_profile):
        profile = tiny_profile.with_store(str(tmp_path))
        jobs = [_SquareJob(value, profile) for value in range(4)]
        assert run_cells(jobs, profile, label="grid") == [0, 1, 4, 9]
        lines = records_file(tmp_path, "grid").read_text().splitlines()
        assert len(lines) == 4
        manifest = read_manifest(manifest_file(tmp_path, "grid"))
        assert manifest["run_status"] == "complete"
        assert manifest["completed"] == 4

    def test_resume_runs_only_missing_cells(self, tmp_path, tiny_profile):
        profile = tiny_profile.with_store(str(tmp_path))
        jobs = [_SquareJob(value, profile) for value in range(4)]
        run_cells(jobs, profile, label="grid")
        records = records_file(tmp_path, "grid")
        lines = records.read_text().splitlines(keepends=True)
        records.write_text("".join(lines[:2]))  # crash after 2 of 4 cells

        resumed_profile = tiny_profile.with_store(str(tmp_path), resume=True)
        jobs = [_SquareJob(value, resumed_profile) for value in range(4)]
        assert run_cells(jobs, resumed_profile, label="grid") == [0, 1, 4, 9]
        # exactly the two missing cells were re-run and appended
        assert len(records.read_text().splitlines()) == 4

    def test_failures_are_persisted_then_raised(self, tmp_path, tiny_profile):
        sentinel = tmp_path / "fault-injected"
        sentinel.touch()
        store_root = tmp_path / "stores"
        profile = tiny_profile.with_store(str(store_root))
        jobs = [_FlakyJob(value, str(sentinel), profile) for value in range(3)]
        with pytest.raises(RuntimeError, match="exploded"):
            run_cells(jobs, profile, label="grid")
        manifest = read_manifest(manifest_file(store_root, "grid"))
        assert manifest["run_status"] == "failed"
        assert manifest["completed"] == 2  # good cells persisted anyway
        assert manifest["failed"] == 1

        # the fault clears; resume re-dispatches only the failed cell
        sentinel.unlink()
        resumed_profile = tiny_profile.with_store(str(store_root), resume=True)
        jobs = [
            _FlakyJob(value, str(sentinel), resumed_profile) for value in range(3)
        ]
        assert run_cells(jobs, resumed_profile, label="grid") == [0, 1, 2]
        assert read_manifest(manifest_file(store_root, "grid"))["run_status"] == (
            "complete"
        )

    def test_no_label_means_no_store(self, tmp_path, tiny_profile):
        profile = tiny_profile.with_store(str(tmp_path))
        jobs = [_SquareJob(value, profile) for value in range(2)]
        assert run_cells(jobs, profile) == [0, 1]
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Kill/resume determinism — the acceptance criterion
# ---------------------------------------------------------------------------


class TestKillResumeDeterminism:
    """Interrupted after k of N cells + resumed == uninterrupted, byte for byte."""

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_table3_resumes_byte_identical(
        self, tmp_path, tiny_profile, tiny_app, backend
    ):
        graph, deadline_s = tiny_app
        applications = [("tiny", graph, deadline_s)]
        core_counts = (2, 3)
        reference = render_report(
            "table3",
            run_table3(
                tiny_profile, core_counts=core_counts, applications=applications
            ),
            tiny_profile,
        )

        stored_profile = tiny_profile.with_store(str(tmp_path)).with_backend(
            experiment_backend=backend
        )
        run_table3(
            stored_profile, core_counts=core_counts, applications=applications
        )
        records = records_file(tmp_path, "table3")
        lines = records.read_text().splitlines(keepends=True)
        assert len(lines) == len(core_counts)
        # crash signature: k=1 whole record + a torn half-line
        records.write_text(lines[0] + lines[1][: len(lines[1]) // 2])

        resumed_profile = tiny_profile.with_store(
            str(tmp_path), resume=True
        ).with_backend(experiment_backend=backend)
        resumed = run_table3(
            resumed_profile, core_counts=core_counts, applications=applications
        )
        assert render_report("table3", resumed, tiny_profile) == reference
        # exactly one cell re-ran
        assert len(records.read_text().splitlines()) == len(core_counts)

    def test_fig10_resumes_byte_identical(self, tmp_path, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        reference = run_fig10(
            tiny_profile, graph=graph, deadline_s=deadline_s, core_counts=(2, 3)
        ).format_table()
        stored = tiny_profile.with_store(str(tmp_path))
        run_fig10(stored, graph=graph, deadline_s=deadline_s, core_counts=(2, 3))
        records = records_file(tmp_path, "fig10")
        lines = records.read_text().splitlines(keepends=True)
        records.write_text(lines[0])
        resumed = run_fig10(
            tiny_profile.with_store(str(tmp_path), resume=True),
            graph=graph,
            deadline_s=deadline_s,
            core_counts=(2, 3),
        )
        assert resumed.format_table() == reference


# ---------------------------------------------------------------------------
# Reporting round-trips: resumed store == in-memory, every module
# ---------------------------------------------------------------------------


class TestReportingRoundTrips:
    """Rendered report from a resumed store == the in-memory path."""

    def roundtrip(self, tmp_path, tiny_profile, experiment_id, runner, **kwargs):
        in_memory = runner(tiny_profile, **kwargs)
        reference = render_report(experiment_id, in_memory, tiny_profile)
        runner(tiny_profile.with_store(str(tmp_path)), **kwargs)
        resumed = runner(
            tiny_profile.with_store(str(tmp_path), resume=True), **kwargs
        )
        assert render_report(experiment_id, resumed, tiny_profile) == reference
        manifest = read_manifest(manifest_file(tmp_path, experiment_id))
        assert manifest["run_status"] == "complete"

    def test_fig3(self, tmp_path, tiny_profile):
        self.roundtrip(tmp_path, tiny_profile, "fig3", run_fig3)

    def test_fig9(self, tmp_path, tiny_profile):
        self.roundtrip(tmp_path, tiny_profile, "fig9", run_fig9)

    def test_fig10(self, tmp_path, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        self.roundtrip(
            tmp_path,
            tiny_profile,
            "fig10",
            run_fig10,
            graph=graph,
            deadline_s=deadline_s,
            core_counts=(2, 3),
        )

    def test_fig11(self, tmp_path, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        self.roundtrip(
            tmp_path,
            tiny_profile,
            "fig11",
            run_fig11,
            graph=graph,
            deadline_s=deadline_s * 1.6,
            num_cores=3,
        )

    def test_table3(self, tmp_path, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        self.roundtrip(
            tmp_path,
            tiny_profile,
            "table3",
            run_table3,
            core_counts=(2, 3),
            applications=[("tiny", graph, deadline_s)],
        )

    def test_run_all_covers_table2_and_nested_stores(self, tmp_path, tiny_profile):
        """run_all streams whole experiments (table2 included) and the
        cell-level experiments nest their own stores below the same root."""
        ids = ("fig3", "table2")
        in_memory = run_all(tiny_profile, ids=ids)
        run_all(tiny_profile.with_store(str(tmp_path)), ids=ids)
        assert (tmp_path / "all").is_dir()
        assert (tmp_path / "fig3").is_dir()  # nested per-experiment store
        resumed = run_all(
            tiny_profile.with_store(str(tmp_path), resume=True), ids=ids
        )
        for experiment_id in ids:
            assert resumed[experiment_id][1] == in_memory[experiment_id][1]


# ---------------------------------------------------------------------------
# Profile plumbing
# ---------------------------------------------------------------------------


class TestProfilePlumbing:
    def test_with_store(self, tiny_profile):
        stored = tiny_profile.with_store("/tmp/s", resume=True)
        assert stored.store_dir == "/tmp/s"
        assert stored.resume is True
        assert tiny_profile.store_dir is None  # original untouched

    def test_worker_profile_keeps_store_settings(self, tiny_profile):
        from repro.experiments.common import worker_profile

        inner = worker_profile(
            tiny_profile.with_store("/tmp/s", resume=True).with_backend(
                experiment_backend="process"
            )
        )
        assert inner.store_dir == "/tmp/s"
        assert inner.resume is True
        assert inner.experiment_backend == "serial"

    def test_smoke_profile(self):
        smoke = ExperimentProfile.smoke(seed=3)
        assert smoke.name == "smoke"
        assert smoke.seed == 3
        assert smoke.search_iterations < ExperimentProfile.fast().search_iterations

    def test_profiles_remain_picklable(self, tiny_profile):
        stored = tiny_profile.with_store("/tmp/s", resume=True)
        assert pickle.loads(pickle.dumps(stored)) == stored


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_store_flags_plumb_into_profile(self):
        from repro.cli import _profile_from, build_parser

        args = build_parser().parse_args(
            [
                "experiment",
                "fig3",
                "--profile",
                "smoke",
                "--store-dir",
                "/tmp/stores",
                "--resume",
            ]
        )
        profile = _profile_from(args)
        assert profile.name == "smoke"
        assert profile.store_dir == "/tmp/stores"
        assert profile.resume is True

    def test_resume_requires_store_dir(self):
        from repro.cli import _profile_from, build_parser

        args = build_parser().parse_args(["experiment", "fig3", "--resume"])
        with pytest.raises(SystemExit, match="--store-dir"):
            _profile_from(args)

    def test_runs_subcommand_lists_manifests(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore.open(
            tmp_path / "table3",
            label="table3",
            fingerprint="f" * 16,
            keys=("000:a", "001:b"),
            profile_summary={"name": "tiny", "seed": 0},
            resume=False,
        )
        store.record_result("000:a", 0, 1)
        store.finalize()
        assert main(["runs", "--store-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "1/2" in out
        assert "partial" in out

    def test_runs_subcommand_cell_detail(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore.open(
            tmp_path / "grid",
            label="grid",
            fingerprint="f" * 16,
            keys=("000:a", "001:b"),
            resume=False,
        )
        store.record_result("000:a", 0, 1)
        store.finalize()
        code = main(
            ["runs", "--store-dir", str(tmp_path), "--run", "grid", "--cells"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "000:a" in out
        assert "pending" in out

    def test_runs_subcommand_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["runs", "--store-dir", str(tmp_path / "nope")]) == 1
        assert "no such store" in capsys.readouterr().err

    def test_cli_store_resume_report_identical(self, tmp_path, capsys):
        """The CI e2e job's contract, in-process: store, truncate, resume."""
        from repro.cli import main

        profile_args = ["experiment", "fig3", "--profile", "smoke"]
        assert main(profile_args) == 0
        reference = capsys.readouterr().out

        store_dir = tmp_path / "stores"
        assert main(profile_args + ["--store-dir", str(store_dir)]) == 0
        capsys.readouterr()
        records = records_file(store_dir, "fig3")
        lines = records.read_text().splitlines(keepends=True)
        records.write_text(lines[0])  # keep 1 of 2 panel cells
        assert (
            main(profile_args + ["--store-dir", str(store_dir), "--resume"]) == 0
        )
        assert capsys.readouterr().out == reference


# ---------------------------------------------------------------------------
# Record format stability (what external tooling may rely on)
# ---------------------------------------------------------------------------


class TestRecordFormat:
    def test_records_are_json_lines_with_known_fields(self, tmp_path, tiny_profile):
        profile = tiny_profile.with_store(str(tmp_path))
        run_cells([_SquareJob(3, profile)], profile, label="grid")
        (line,) = records_file(tmp_path, "grid").read_text().splitlines()
        record = json.loads(line)
        assert record["status"] == "ok"
        assert record["index"] == 0
        assert record["key"].startswith("000:_SquareJob(")
        assert "payload" in record

    def test_manifest_has_documented_fields(self, tmp_path, tiny_profile):
        profile = tiny_profile.with_store(str(tmp_path))
        run_cells([_SquareJob(3, profile)], profile, label="grid")
        manifest = read_manifest(manifest_file(tmp_path, "grid"))
        for field in (
            "format",
            "label",
            "fingerprint",
            "profile",
            "cells",
            "status",
            "completed",
            "failed",
            "total",
            "run_status",
        ):
            assert field in manifest
        assert manifest["fingerprint"] == profile.result_fingerprint()


# ---------------------------------------------------------------------------
# Concurrent readers: the service polls stores a live writer is
# streaming into — every reader degrades to "fewer records", never
# raises.
# ---------------------------------------------------------------------------


class TestConcurrentReaders:
    def _store(self, tmp_path):
        return RunStore.open(
            tmp_path / "run",
            label="run",
            fingerprint="f" * 16,
            keys=("000:a", "001:b", "002:c"),
            resume=False,
        )

    def test_scan_records_tolerates_mid_append_partial_line(self, tmp_path):
        store = self._store(tmp_path)
        store.record_result("000:a", 0, 1)
        store.record_result("001:b", 1, 2)
        # A writer mid-append: the tail line has no newline yet and is
        # cut inside its JSON document.
        whole = store.records_path.read_text()
        with store.records_path.open("a") as handle:
            handle.write(whole.splitlines()[0][:20])
        records = list(scan_records(store.records_path, decode=True))
        assert [record.key for record in records] == ["000:a", "001:b"]
        assert records[0].payload == 1

    def test_scan_records_missing_file(self, tmp_path):
        assert list(scan_records(tmp_path / "never" / "records.jsonl")) == []

    def test_scan_records_skips_undecodable_payload(self, tmp_path):
        store = self._store(tmp_path)
        store.record_result("000:a", 0, 1)
        lines = store.records_path.read_text().splitlines()
        doc = json.loads(lines[0])
        doc["payload"] = "!!not-base64!!"
        doc["key"] = "001:b"
        with store.records_path.open("a") as handle:
            handle.write(json.dumps(doc) + "\n")
        decoded = list(scan_records(store.records_path, decode=True))
        assert [record.key for record in decoded] == ["000:a"]

    def test_load_results_with_live_writer_tail(self, tmp_path):
        store = self._store(tmp_path)
        store.record_result("000:a", 0, 1)
        with store.records_path.open("a") as handle:
            handle.write('{"key": "001:b", "status": "ok", "payl')
            handle.flush()
            # A second reader opens the store while the writer's half
            # record is durable on disk.
            reader = RunStore.open(
                tmp_path / "run",
                label="run",
                fingerprint="f" * 16,
                keys=("000:a", "001:b", "002:c"),
                resume=True,
            )
            assert set(reader.load_results()) == {"000:a"}

    def test_read_manifest_tolerates_partial_document(self, tmp_path):
        target = tmp_path / MANIFEST_NAME
        target.write_text('{"label": "run", "tot')  # torn mid-write copy
        assert read_manifest(target) is None
        target.write_text("[1, 2, 3]")  # valid JSON, wrong shape
        assert read_manifest(target) is None
        assert read_manifest(tmp_path / "absent.json") is None

    def test_iter_manifests_finds_nested_service_layout(self, tmp_path):
        # Service layout: <root>/runs/<run id>/<label>/manifest.json
        deep = tmp_path / "runs" / "fig3-abc123" / "fig3"
        RunStore.open(
            deep, label="fig3", fingerprint="a" * 16, keys=("000:x",),
            resume=False,
        )
        # Flat CLI layout next to it: <root>/<label>/manifest.json
        RunStore.open(
            tmp_path / "table3", label="table3", fingerprint="b" * 16,
            keys=("000:y",), resume=False,
        )
        found = {manifest["label"] for _path, manifest in iter_manifests(tmp_path)}
        assert found == {"fig3", "table3"}

    def test_iter_manifests_does_not_descend_below_a_manifest(self, tmp_path):
        outer = tmp_path / "outer"
        RunStore.open(
            outer, label="outer", fingerprint="a" * 16, keys=("000:x",),
            resume=False,
        )
        RunStore.open(
            outer / "inner", label="inner", fingerprint="b" * 16,
            keys=("000:y",), resume=False,
        )
        labels = [manifest["label"] for _p, manifest in iter_manifests(tmp_path)]
        assert labels == ["outer"]

    def test_iter_manifests_depth_limit(self, tmp_path):
        deep = tmp_path / "a" / "b" / "c" / "d" / "e"
        RunStore.open(
            deep, label="deep", fingerprint="a" * 16, keys=("000:x",),
            resume=False,
        )
        assert list(iter_manifests(tmp_path, max_depth=2)) == []
        assert [
            manifest["label"] for _p, manifest in iter_manifests(tmp_path)
        ] == []  # default depth 4 stops above e/
        assert [
            manifest["label"]
            for _p, manifest in iter_manifests(tmp_path, max_depth=8)
        ] == ["deep"]
