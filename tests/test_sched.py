"""Tests for list scheduling and the schedule data structure."""

import pytest

from repro.mapping import Mapping
from repro.sched import ListScheduler, Schedule, ScheduledTask
from repro.taskgraph import TaskGraph, fork_join_graph


def two_task_graph(comm: int = 100) -> TaskGraph:
    g = TaskGraph(name="two")
    g.add_task("a", 1000)
    g.add_task("b", 2000)
    g.add_edge("a", "b", comm)
    return g


class TestScheduledTask:
    def test_duration_and_busy_cycles(self):
        entry = ScheduledTask("a", 0, 1.0, 2.0, compute_cycles=100, receive_cycles=20)
        assert entry.duration_s == pytest.approx(1.0)
        assert entry.busy_cycles == 120

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_s": -1.0, "finish_s": 0.0},
            {"start_s": 2.0, "finish_s": 1.0},
        ],
    )
    def test_rejects_bad_window(self, kwargs):
        with pytest.raises(ValueError):
            ScheduledTask("a", 0, compute_cycles=1, receive_cycles=0, **kwargs)

    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            ScheduledTask("a", 0, 0.0, 1.0, compute_cycles=0, receive_cycles=0)


class TestListSchedulerBasics:
    def test_single_core_serializes(self):
        g = two_task_graph()
        scheduler = ListScheduler(g, [1e6])
        schedule = scheduler.schedule(Mapping({"a": 0, "b": 0}, 1))
        # Same core: no comm; 3000 cycles at 1 MHz.
        assert schedule.makespan_s() == pytest.approx(3e-3)
        assert schedule.entry("b").receive_cycles == 0

    def test_cross_core_charges_receive(self):
        g = two_task_graph(comm=500)
        scheduler = ListScheduler(g, [1e6, 1e6])
        schedule = scheduler.schedule(Mapping({"a": 0, "b": 1}, 2))
        entry_b = schedule.entry("b")
        assert entry_b.receive_cycles == 500
        # b starts when a finishes, then takes 2500 cycles.
        assert entry_b.start_s == pytest.approx(1e-3)
        assert schedule.makespan_s() == pytest.approx(1e-3 + 2.5e-3)

    def test_heterogeneous_frequencies(self):
        g = two_task_graph(comm=0)
        scheduler = ListScheduler(g, [1e6, 2e6])
        schedule = scheduler.schedule(Mapping({"a": 0, "b": 1}, 2))
        # b runs at 2 MHz: 1 ms for 2000 cycles.
        assert schedule.entry("b").duration_s == pytest.approx(1e-3)

    def test_parallel_branches_overlap(self):
        g = fork_join_graph(2, branch_cycles=1_000_000, comm_cycles=0)
        mapping = Mapping({"source": 0, "b1": 0, "b2": 1, "sink": 0}, 2)
        schedule = ListScheduler(g, [1e8, 1e8]).schedule(mapping)
        b1, b2 = schedule.entry("b1"), schedule.entry("b2")
        assert b1.start_s < b2.finish_s and b2.start_s < b1.finish_s

    def test_priority_prefers_critical_path(self):
        g = TaskGraph()
        g.add_task("root", 10)
        g.add_task("long", 1000)
        g.add_task("short", 10)
        g.add_edge("root", "long")
        g.add_edge("root", "short")
        mapping = Mapping({"root": 0, "long": 0, "short": 0}, 1)
        schedule = ListScheduler(g, [1e6]).schedule(mapping)
        # Bottom-level priority runs the long branch first.
        assert schedule.entry("long").start_s < schedule.entry("short").start_s

    def test_for_platform_uses_scaling(self, mpeg2, platform4):
        platform4.set_scaling_vector([1, 2, 3, 1])
        scheduler = ListScheduler.for_platform(mpeg2, platform4)
        assert scheduler.frequencies_hz[1] == pytest.approx(1e8)
        assert scheduler.frequencies_hz[2] == pytest.approx(2e8 / 3)

    def test_rejects_mismatched_mapping(self, mpeg2):
        scheduler = ListScheduler(mpeg2, [1e8, 1e8])
        with pytest.raises(ValueError):
            scheduler.schedule(Mapping.round_robin(mpeg2, 4))

    def test_rejects_bad_frequencies(self, mpeg2):
        with pytest.raises(ValueError):
            ListScheduler(mpeg2, [])
        with pytest.raises(ValueError):
            ListScheduler(mpeg2, [1e8, -1.0])

    def test_makespan_helper(self, mpeg2):
        scheduler = ListScheduler(mpeg2, [2e8] * 4)
        mapping = Mapping.round_robin(mpeg2, 4)
        assert scheduler.makespan_s(mapping) == pytest.approx(
            scheduler.schedule(mapping).makespan_s()
        )


class TestScheduleInvariants:
    @pytest.mark.parametrize("num_cores", [1, 2, 4])
    def test_verify_passes_for_scheduler_output(self, mpeg2, num_cores):
        mapping = Mapping.round_robin(mpeg2, num_cores)
        schedule = ListScheduler(mpeg2, [2e8] * num_cores).schedule(mapping)
        schedule.verify(mpeg2, mapping)  # raises on violation

    def test_busy_cycles_match_eq7(self, mpeg2):
        from repro.mapping.metrics import core_execution_cycles

        mapping = Mapping.round_robin(mpeg2, 4)
        schedule = ListScheduler(mpeg2, [2e8] * 4).schedule(mapping)
        for core in range(4):
            assert schedule.busy_cycles(core) == core_execution_cycles(
                mpeg2, mapping, core
            )

    def test_activity_bounds(self, mpeg2):
        mapping = Mapping.round_robin(mpeg2, 4)
        schedule = ListScheduler(mpeg2, [2e8] * 4).schedule(mapping)
        for activity in schedule.activities():
            assert 0.0 <= activity <= 1.0

    def test_makespan_bounds(self, mpeg2):
        # CP / f <= T_M <= serial / f for a uniform platform.
        mapping = Mapping.round_robin(mpeg2, 4)
        schedule = ListScheduler(mpeg2, [2e8] * 4).schedule(mapping)
        lower = mpeg2.critical_path_cycles() / 2e8
        upper = (mpeg2.total_cycles() + mpeg2.total_comm_cycles()) / 2e8
        assert lower - 1e-9 <= schedule.makespan_s() <= upper + 1e-9

    def test_empty_core_allowed(self, pipeline6):
        mapping = Mapping.all_on_core(pipeline6, 3, 0)
        schedule = ListScheduler(pipeline6, [1e8] * 3).schedule(mapping)
        assert schedule.busy_cycles(1) == 0
        assert schedule.activity(1) == 0.0


class TestScheduleStructure:
    def _simple_schedule(self) -> Schedule:
        entries = [
            ScheduledTask("a", 0, 0.0, 1.0, compute_cycles=100, receive_cycles=0),
            ScheduledTask("b", 1, 0.5, 2.0, compute_cycles=150, receive_cycles=10),
        ]
        return Schedule(entries, num_cores=2, frequencies_hz=[100.0, 100.0])

    def test_lookup(self):
        schedule = self._simple_schedule()
        assert schedule.entry("a").core == 0
        assert "b" in schedule
        with pytest.raises(KeyError):
            schedule.entry("ghost")

    def test_makespan_cycles_reference(self):
        schedule = self._simple_schedule()
        assert schedule.makespan_cycles() == 200  # 2 s at 100 Hz
        assert schedule.makespan_cycles(50.0) == 100

    def test_duplicate_task_rejected(self):
        entry = ScheduledTask("a", 0, 0.0, 1.0, compute_cycles=1, receive_cycles=0)
        with pytest.raises(ValueError):
            Schedule([entry, entry], num_cores=1, frequencies_hz=[1.0])

    def test_invalid_core_rejected(self):
        entry = ScheduledTask("a", 5, 0.0, 1.0, compute_cycles=1, receive_cycles=0)
        with pytest.raises(ValueError):
            Schedule([entry], num_cores=1, frequencies_hz=[1.0])

    def test_verify_detects_overlap(self, pipeline6):
        mapping = Mapping.all_on_core(pipeline6, 1, 0)
        entries = [
            ScheduledTask(name, 0, 0.0, 1.0, compute_cycles=1, receive_cycles=0)
            for name in pipeline6.task_names()
        ]
        schedule = Schedule(entries, 1, [1e6])
        with pytest.raises(ValueError):
            schedule.verify(pipeline6, mapping)

    def test_gantt_render(self, mpeg2):
        mapping = Mapping.round_robin(mpeg2, 4)
        schedule = ListScheduler(mpeg2, [2e8] * 4).schedule(mapping)
        text = schedule.gantt_text()
        assert "core0" in text and "T_M" in text

    def test_empty_schedule_makespan(self):
        schedule = Schedule([], num_cores=1, frequencies_hz=[1.0])
        assert schedule.makespan_s() == 0.0
        assert schedule.gantt_text() == "(empty schedule)"


class TestFromArraysValidation:
    """The debug-mode row validation toggle for Schedule.from_arrays."""

    @pytest.fixture(autouse=True)
    def _restore_toggle(self):
        from repro.sched import set_from_arrays_validation

        previous = set_from_arrays_validation(False)
        yield
        set_from_arrays_validation(previous)

    def _arrays(self):
        # (names, cores, starts, finishes, compute, receive)
        return (["a", "b"], [0, 1], [0.0, 0.0], [1.0, 2.0], [100, 200], [0, 0])

    def test_off_by_default_trusts_rows(self):
        from repro.sched import from_arrays_validation_enabled

        assert not from_arrays_validation_enabled()
        names, cores, starts, finishes, compute, receive = self._arrays()
        # Duplicate name sails through when validation is off (rows are
        # trusted to come from the scheduler's own state).
        schedule = Schedule.from_arrays(
            ["a", "a"], cores, starts, finishes, compute, receive, 2, [1.0, 1.0]
        )
        assert len(schedule) == 2

    def test_toggle_catches_duplicates_and_bad_cores(self):
        from repro.sched import set_from_arrays_validation

        assert set_from_arrays_validation(True) is False
        names, cores, starts, finishes, compute, receive = self._arrays()
        with pytest.raises(ValueError, match="scheduled twice"):
            Schedule.from_arrays(
                ["a", "a"], cores, starts, finishes, compute, receive, 2, [1.0, 1.0]
            )
        with pytest.raises(ValueError, match="invalid core"):
            Schedule.from_arrays(
                names, [0, 7], starts, finishes, compute, receive, 2, [1.0, 1.0]
            )

    def test_toggle_catches_ragged_arrays(self):
        from repro.sched import set_from_arrays_validation

        set_from_arrays_validation(True)
        names, cores, starts, finishes, compute, receive = self._arrays()
        with pytest.raises(ValueError, match="disagree on length"):
            Schedule.from_arrays(
                names, cores, starts[:1], finishes, compute, receive, 2, [1.0, 1.0]
            )

    def test_valid_rows_pass_with_validation_on(self, mpeg2):
        from repro.sched import set_from_arrays_validation

        set_from_arrays_validation(True)
        mapping = Mapping.round_robin(mpeg2, 4)
        schedule = ListScheduler(mpeg2, [2e8] * 4).schedule(mapping)
        schedule.verify(mpeg2, mapping)
