"""Tests for the two stage-2 engines behind ``sea_mapper``."""

import pytest

from repro.optim import sea_mapper
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


@pytest.mark.parametrize("engine", ["anneal", "walk"])
def test_both_engines_produce_feasible_designs(
    engine, mpeg2, platform4, mpeg2_evaluator
):
    mapper = sea_mapper(search_iterations=300, engine=engine)
    point = mapper(mpeg2_evaluator, (2, 2, 2, 2), 0)
    assert point.makespan_s <= MPEG2_DEADLINE_S + 1e-9
    point.mapping.validate_against(mpeg2)


@pytest.mark.parametrize("engine", ["anneal", "walk"])
def test_engines_are_deterministic(engine, mpeg2_evaluator):
    mapper = sea_mapper(search_iterations=200, engine=engine)
    a = mapper(mpeg2_evaluator, (1, 1, 1, 1), 5)
    b = mapper(mpeg2_evaluator, (1, 1, 1, 1), 5)
    assert a.mapping == b.mapping
    assert a.expected_seus == b.expected_seus


def test_engines_never_return_worse_than_the_warm_start(
    mpeg2, platform4, mpeg2_evaluator
):
    # Both engines start from the same InitialSEAMapping; whenever that
    # constructive point is already feasible, the refined design must
    # not be worse on the SEU objective.
    from repro.optim import initial_sea_mapping

    scaling = (1, 1, 1, 1)
    initial = initial_sea_mapping(
        mpeg2, platform4, MPEG2_DEADLINE_S, scaling=scaling
    )
    start = mpeg2_evaluator.evaluate(initial, scaling)
    assert start.meets_deadline
    for engine in ("anneal", "walk"):
        refined = sea_mapper(search_iterations=400, engine=engine)(
            mpeg2_evaluator, scaling, 0
        )
        assert refined.expected_seus <= start.expected_seus + 1e-9
