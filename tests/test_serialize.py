"""Tests for task-graph (de)serialization."""

import json

import pytest

from repro.taskgraph import graph_from_dict, graph_to_dict
from repro.taskgraph.serialize import load_graph, save_graph


class TestRoundTrip:
    def test_mpeg2_round_trip(self, mpeg2):
        clone = graph_from_dict(graph_to_dict(mpeg2))
        assert clone.name == mpeg2.name
        assert clone.task_names() == mpeg2.task_names()
        assert list(clone.edges()) == list(mpeg2.edges())
        for name in mpeg2.task_names():
            assert clone.task(name).cycles == mpeg2.task(name).cycles
            assert clone.task(name).label == mpeg2.task(name).label
            assert clone.registers_of(name) == mpeg2.registers_of(name)

    def test_register_sharing_preserved(self, mpeg2):
        clone = graph_from_dict(graph_to_dict(mpeg2))
        original_map = mpeg2.register_map()
        clone_map = clone.register_map()
        for a in ("t5", "t6", "t7"):
            for b in ("t6", "t8"):
                if a != b:
                    assert clone_map.shared_bits(a, b) == original_map.shared_bits(a, b)

    def test_dict_is_json_compatible(self, mpeg2):
        text = json.dumps(graph_to_dict(mpeg2))
        clone = graph_from_dict(json.loads(text))
        assert clone.num_tasks == mpeg2.num_tasks

    def test_file_round_trip(self, mpeg2, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(mpeg2, path)
        clone = load_graph(path)
        assert clone.task_names() == mpeg2.task_names()

    def test_version_check(self, mpeg2):
        data = graph_to_dict(mpeg2)
        data["version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(data)

    def test_fresh_graph_from_minimal_dict(self):
        graph = graph_from_dict(
            {
                "name": "mini",
                "tasks": [{"name": "a", "cycles": 5}, {"name": "b", "cycles": 6}],
                "edges": [{"producer": "a", "consumer": "b", "comm_cycles": 1}],
            }
        )
        assert graph.num_tasks == 2
        assert graph.comm_cycles("a", "b") == 1
