"""The HTTP job service: queueing, dedup, structured errors, byte-identity.

Exercises the real stack — JobManager worker threads, the stdlib
``ThreadingHTTPServer`` on an ephemeral port, and the ``urllib``
client — against smoke-profile runs, so every test is an end-to-end
submit → poll → fetch round trip.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.exec import RetryPolicy
from repro.experiments.common import ExperimentProfile
from repro.experiments.runner import run_experiment
from repro.service import (
    JobManager,
    QueueFullError,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    make_server,
)

FIG3 = {"experiment": "fig3", "profile": "smoke"}


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("transport", "serial")
    kwargs.setdefault("default_exec_plan", "dag")
    return JobManager(ServiceConfig(store_root=str(tmp_path / "svc"), **kwargs))


# ---------------------------------------------------------------------------
# JobManager: the queue/worker layer, no HTTP.
# ---------------------------------------------------------------------------


class TestJobManager:
    def test_submit_executes_and_completes(self, tmp_path):
        with _manager(tmp_path) as manager:
            submission = manager.submit(FIG3, tenant="alice")
            assert submission.cached is False
            assert manager.wait_idle(timeout=120)
            status = manager.status(submission.run_id)
            assert status.state == "complete"
            _, direct = run_experiment("fig3", ExperimentProfile.smoke())
            assert manager.report(submission.run_id) == direct + "\n"

    def test_duplicate_submission_served_from_cache(self, tmp_path, monkeypatch):
        with _manager(tmp_path) as manager:
            first = manager.submit(FIG3, tenant="alice")
            assert manager.wait_idle(timeout=120)

            def boom(*args, **kwargs):
                raise AssertionError("cached submission must not execute")

            monkeypatch.setattr(api, "run_submitted", boom)
            second = manager.submit(FIG3, tenant="bob")
            assert second.cached is True
            assert second.run_id == first.run_id
            status = manager.status(first.run_id)
            assert set(status.tenants) == {"alice", "bob"}

    def test_in_flight_submission_joined_not_duplicated(self, tmp_path, monkeypatch):
        release = threading.Event()
        real = api.run_submitted

        def slow(store_root, run_id, exec_plan=None):
            release.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", slow)
        with _manager(tmp_path, max_concurrency=1) as manager:
            first = manager.submit(FIG3, tenant="alice")
            joined = manager.submit(FIG3, tenant="bob")
            assert joined.run_id == first.run_id
            assert joined.cached is False
            assert joined.scheduled is False  # no second queue entry
            release.set()
            assert manager.wait_idle(timeout=120)
            assert manager.status(first.run_id).state == "complete"

    def test_concurrency_limit_queues_rather_than_rejects(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        with _manager(tmp_path, max_concurrency=1) as manager:
            first = manager.submit(FIG3)
            assert started.wait(timeout=30)
            # A different run beyond the worker count queues quietly.
            second = manager.submit({"experiment": "fig3", "profile": "smoke",
                                     "seed": 1})
            assert second.run_id != first.run_id
            states = manager.job_states()
            assert states[first.run_id] == "running"
            assert states[second.run_id] == "queued"
            gate.set()
            assert manager.wait_idle(timeout=240)
            assert manager.status(first.run_id).state == "complete"
            assert manager.status(second.run_id).state == "complete"

    def test_full_queue_refuses_with_503(self, tmp_path, monkeypatch):
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        with _manager(tmp_path, max_concurrency=1, queue_size=1) as manager:
            manager.submit(FIG3)
            assert started.wait(timeout=30)
            # Worker busy; these two race for the single queue slot.
            submissions = []
            error = None
            for seed in (1, 2, 3):
                try:
                    submissions.append(
                        manager.submit(
                            {"experiment": "fig3", "profile": "smoke",
                             "seed": seed}
                        )
                    )
                except QueueFullError as exc:
                    error = exc
            assert error is not None
            assert error.http_status == 503
            assert error.to_dict()["code"] == "queue-full"
            gate.set()
            manager.wait_idle(timeout=240)

    def test_cancel_queued_job(self, tmp_path, monkeypatch):
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        with _manager(tmp_path, max_concurrency=1) as manager:
            manager.submit(FIG3)
            assert started.wait(timeout=30)
            queued = manager.submit(
                {"experiment": "fig3", "profile": "smoke", "seed": 9}
            )
            cancelled = manager.cancel(queued.run_id)
            assert cancelled.state == "cancelled"
            gate.set()
            assert manager.wait_idle(timeout=240)
            # The cancelled run was skipped at dispatch, not executed.
            assert manager.status(queued.run_id).state == "cancelled"
            with pytest.raises(api.RunConflictError):
                manager.report(queued.run_id)

    def test_submit_after_close_rejected(self, tmp_path):
        manager = _manager(tmp_path).start()
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.submit(FIG3)

    def test_stats_shape(self, tmp_path):
        with _manager(tmp_path) as manager:
            stats = manager.stats()
            assert stats["queued"] == 0
            assert stats["running"] == 0
            assert stats["max_concurrency"] == 2
            assert stats["executor"] is not None


# ---------------------------------------------------------------------------
# The HTTP stack: server + client on an ephemeral port.
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    server = make_server(
        ServiceConfig(
            store_root=str(tmp_path / "svc"),
            max_concurrency=2,
            transport="serial",
        )
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout=120.0)
    try:
        yield client, server
    finally:
        server.shutdown()
        server.server_close()
        server.manager.close()


class TestHttpService:
    def test_submit_poll_fetch_round_trip(self, service):
        client, _server = service
        submission = client.submit_experiment(
            "fig3", profile="smoke", tenant="alice"
        )
        assert submission["cached"] is False
        status = client.wait(submission["run_id"], timeout=240)
        assert status["state"] == "complete"
        assert status["cells"]["failed"] == 0
        report = client.report(submission["run_id"])
        _, direct = run_experiment("fig3", ExperimentProfile.smoke())
        assert report == direct + "\n"

    def test_duplicate_submission_cached_across_tenants(self, service):
        client, _server = service
        first = client.submit_experiment("fig3", profile="smoke", tenant="a")
        client.wait(first["run_id"], timeout=240)
        second = client.submit_experiment("fig3", profile="smoke", tenant="b")
        assert second["cached"] is True
        assert second["run_id"] == first["run_id"]
        runs = client.runs()
        assert len(runs) == 1
        assert set(runs[0]["tenants"]) == {"a", "b"}
        assert client.runs(tenant="a") and client.runs(tenant="zzz") == []

    def test_invalid_submission_structured_400(self, service):
        client, _server = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_experiment("fig99", profile="smoke")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-request"
        assert excinfo.value.field == "experiment"
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"experiment": "fig3", "profile": "enormous"})
        assert excinfo.value.status == 400
        assert excinfo.value.field == "profile"

    def test_unknown_run_structured_404(self, service):
        client, _server = service
        for call in (client.status, client.report, client.cancel):
            with pytest.raises(ServiceClientError) as excinfo:
                call("missing-000000000000")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "unknown-run"

    def test_unknown_endpoint_404(self, service):
        client, _server = service
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/v2/runs")
        assert excinfo.value.status == 404

    def test_malformed_body_400(self, service):
        client, _server = service
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/v1/runs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_report_before_completion_409(self, service, monkeypatch):
        client, server = service
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        submission = client.submit_experiment("fig3", profile="smoke")
        assert started.wait(timeout=30)
        with pytest.raises(ServiceClientError) as excinfo:
            client.report(submission["run_id"])
        assert excinfo.value.status == 409
        assert excinfo.value.code == "run-conflict"
        gate.set()
        client.wait(submission["run_id"], timeout=240)

    def test_health_endpoint(self, service):
        client, _server = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["max_concurrency"] == 2
        assert "executor" in health

# ---------------------------------------------------------------------------
# Fault tolerance: orphan detection, supervisor re-attach, graceful drain.
# ---------------------------------------------------------------------------


def _dead_pid():
    """A pid guaranteed to be dead: a child we spawned and reaped."""
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    return child.pid


def _orphan_record(store_root, run_id, state="running"):
    """Rewrite a run record as if its owning server process died."""
    run_dir = api._run_directory(store_root, run_id)
    record = api._read_run_record(run_dir)
    assert record is not None
    record["state"] = state
    record["owner"] = {
        "pid": _dead_pid(),
        "host": socket.gethostname(),
        "attached_at": 0.0,
    }
    api._write_run_record(run_dir, record)


class TestFaultTolerance:
    def test_orphaned_running_run_reports_interrupted(self, tmp_path):
        store = tmp_path / "svc"
        submission = api.submit_run(FIG3, store, wait=False)
        _orphan_record(store, submission.run_id, state="running")
        status = api.run_status(store, submission.run_id)
        assert status.state == api.INTERRUPTED_STATE
        assert [s.state for s in api.list_runs(store)] == ["interrupted"]
        # Derived, never written: the on-disk record still says running.
        record = api._read_run_record(api._run_directory(store, submission.run_id))
        assert record["state"] == "running"

    def test_live_owner_is_not_interrupted(self, tmp_path):
        store = tmp_path / "svc"
        submission = api.submit_run(FIG3, store, wait=False)
        run_dir = api._run_directory(store, submission.run_id)
        record = api._read_run_record(run_dir)
        record["state"] = "running"  # owner: this process, alive
        api._write_run_record(run_dir, record)
        assert api.run_status(store, submission.run_id).state == "running"

    def test_submit_requeues_an_orphaned_run(self, tmp_path):
        store = tmp_path / "svc"
        first = api.submit_run(FIG3, store, wait=False)
        _orphan_record(store, first.run_id, state="running")
        again = api.submit_run(FIG3, store, wait=False)
        assert again.run_id == first.run_id
        assert again.scheduled is True  # requeued under this owner, not joined
        record = api._read_run_record(api._run_directory(store, first.run_id))
        assert record["state"] == "queued"
        assert record["owner"]["pid"] == os.getpid()

    def test_manager_start_reattaches_and_finishes_orphans(self, tmp_path):
        store = tmp_path / "svc"
        submission = api.submit_run(FIG3, store, wait=False)
        _orphan_record(store, submission.run_id, state="running")
        assert api.run_status(store, submission.run_id).state == "interrupted"
        with _manager(tmp_path) as manager:
            assert manager.wait_idle(timeout=240)
            assert manager.status(submission.run_id).state == "complete"
            _, direct = run_experiment("fig3", ExperimentProfile.smoke())
            assert manager.report(submission.run_id) == direct + "\n"
        # Nothing left to adopt once the run completed.
        assert api.reattach_pending(store) == []

    def test_resume_orphans_off_leaves_records_alone(self, tmp_path):
        store = tmp_path / "svc"
        submission = api.submit_run(FIG3, store, wait=False)
        _orphan_record(store, submission.run_id, state="queued")
        with _manager(tmp_path, resume_orphans=False) as manager:
            assert manager.wait_idle(timeout=30)
            assert manager.job_states() == {}
        record = api._read_run_record(api._run_directory(store, submission.run_id))
        assert record["state"] == "queued"

    def test_graceful_drain_persists_queued_backlog(self, tmp_path, monkeypatch):
        gate = threading.Event()
        started = threading.Event()
        executed = []
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            executed.append(run_id)
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        manager = _manager(tmp_path, max_concurrency=1).start()
        first = manager.submit(FIG3)
        assert started.wait(timeout=30)
        second = manager.submit(
            {"experiment": "fig3", "profile": "smoke", "seed": 1}
        )
        # Begin the drain while the first run is still in flight, then
        # release it: close() flags skip-queued before the worker can
        # pop the backlog.
        closer = threading.Thread(
            target=lambda: manager.close(execute_queued=False)
        )
        closer.start()
        deadline = time.monotonic() + 10
        while not manager._closed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert manager._closed
        gate.set()
        closer.join(timeout=240)
        assert not closer.is_alive()
        # The in-flight run finished; the queued one was skipped and its
        # record persists as queued for the next boot.
        assert executed == [first.run_id]
        assert manager.status(first.run_id).state == "complete"
        record = api._read_run_record(
            api._run_directory(tmp_path / "svc", second.run_id)
        )
        assert record["state"] == "queued"
        # "Next boot": doctor the owner to a dead pid (in production the
        # drained server process is gone) and a fresh manager finishes it.
        _orphan_record(tmp_path / "svc", second.run_id, state="queued")
        with _manager(tmp_path) as fresh:
            assert fresh.wait_idle(timeout=240)
            assert fresh.status(second.run_id).state == "complete"

    def test_queue_full_503_sends_retry_after_header(self, tmp_path, monkeypatch):
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        server = make_server(
            ServiceConfig(
                store_root=str(tmp_path / "svc"),
                max_concurrency=1,
                queue_size=1,
                transport="serial",
                retry_after_s=2.0,
            )
        )
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            # Raw urllib: ServiceClient would retry the 503 away.
            def post(seed):
                body = json.dumps(
                    {"experiment": "fig3", "profile": "smoke", "seed": seed}
                ).encode("utf-8")
                request = urllib.request.Request(
                    f"http://127.0.0.1:{server.port}/v1/runs",
                    data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                urllib.request.urlopen(request, timeout=30).read()

            post(0)
            assert started.wait(timeout=30)  # worker busy on run 0
            post(1)  # takes the single queue slot
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(2)
            error = excinfo.value
            assert error.code == 503
            assert error.headers["Retry-After"] == "2"
            payload = json.loads(error.read().decode("utf-8"))["error"]
            assert payload["code"] == "queue-full"
            assert payload["retryable"] is True
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            server.manager.close()


# ---------------------------------------------------------------------------
# Client-side retries, against a scripted stub server.
# ---------------------------------------------------------------------------


def _scripted_server(script):
    """An HTTP server answering GETs from ``script``; repeats the last entry.

    Each entry is ``(status, extra headers, body bytes)``; ``calls``
    records the request paths, so tests can count attempts.
    """
    from http.server import BaseHTTPRequestHandler, HTTPServer

    calls = []

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            status, headers, body = script[min(len(calls), len(script) - 1)]
            calls.append(self.path)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = HTTPServer(("127.0.0.1", 0), Handler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, calls


_BUSY = json.dumps(
    {"error": {"code": "queue-full", "message": "busy", "retryable": True}}
).encode("utf-8")
_OK = json.dumps({"status": "ok"}).encode("utf-8")
_GONE = json.dumps(
    {"error": {"code": "unknown-run", "message": "nope", "retryable": False}}
).encode("utf-8")


class TestClientRetries:
    def _client(self, server, attempts=4):
        return ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            timeout=10.0,
            retry=RetryPolicy(
                max_attempts=attempts, base_delay_s=0.01, jitter=0.0
            ),
        )

    def test_retries_retryable_503_until_success(self):
        server, calls = _scripted_server(
            [
                (503, {"Retry-After": "0"}, _BUSY),
                (503, {"Retry-After": "0"}, _BUSY),
                (200, {}, _OK),
            ]
        )
        try:
            assert self._client(server).health() == {"status": "ok"}
            assert len(calls) == 3
        finally:
            server.shutdown()

    def test_gives_up_after_max_attempts(self):
        server, calls = _scripted_server([(503, {"Retry-After": "0"}, _BUSY)])
        try:
            with pytest.raises(ServiceClientError) as excinfo:
                self._client(server, attempts=2).health()
            assert excinfo.value.status == 503
            assert excinfo.value.retryable is True
            assert len(calls) == 2
        finally:
            server.shutdown()

    def test_4xx_never_retried(self):
        server, calls = _scripted_server([(404, {}, _GONE)])
        try:
            with pytest.raises(ServiceClientError) as excinfo:
                self._client(server).status("missing-000000000000")
            assert excinfo.value.status == 404
            assert excinfo.value.retryable is False
            assert len(calls) == 1
        finally:
            server.shutdown()

    def test_connection_errors_retried_then_raised(self):
        # A port with no listener: every attempt fails to connect.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"http://127.0.0.1:{port}",
            timeout=5.0,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, jitter=0.0),
        )
        with pytest.raises(OSError):
            client.health()

    def test_wait_treats_interrupted_as_transient(self):
        # A run interrupted by a server crash completes after re-attach;
        # waiters must poll through the interruption, not give up.
        interrupted = json.dumps({"run_id": "r", "state": "interrupted"}).encode()
        complete = json.dumps({"run_id": "r", "state": "complete"}).encode()
        server, calls = _scripted_server(
            [(200, {}, interrupted), (200, {}, complete)]
        )
        try:
            status = self._client(server).wait("r", timeout=30, poll_interval=0.01)
            assert status["state"] == "complete"
            assert len(calls) == 2
        finally:
            server.shutdown()

    def test_retryable_defaults_follow_status_class(self):
        assert ServiceClientError(500, "internal-error", "boom").retryable is True
        assert ServiceClientError(404, "unknown-run", "gone").retryable is False
        explicit = ServiceClientError(503, "queue-full", "x", retryable=False)
        assert explicit.retryable is False
