"""The HTTP job service: queueing, dedup, structured errors, byte-identity.

Exercises the real stack — JobManager worker threads, the stdlib
``ThreadingHTTPServer`` on an ephemeral port, and the ``urllib``
client — against smoke-profile runs, so every test is an end-to-end
submit → poll → fetch round trip.
"""

import threading

import pytest

from repro import api
from repro.experiments.common import ExperimentProfile
from repro.experiments.runner import run_experiment
from repro.service import (
    JobManager,
    QueueFullError,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    make_server,
)

FIG3 = {"experiment": "fig3", "profile": "smoke"}


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("transport", "serial")
    kwargs.setdefault("default_exec_plan", "dag")
    return JobManager(ServiceConfig(store_root=str(tmp_path / "svc"), **kwargs))


# ---------------------------------------------------------------------------
# JobManager: the queue/worker layer, no HTTP.
# ---------------------------------------------------------------------------


class TestJobManager:
    def test_submit_executes_and_completes(self, tmp_path):
        with _manager(tmp_path) as manager:
            submission = manager.submit(FIG3, tenant="alice")
            assert submission.cached is False
            assert manager.wait_idle(timeout=120)
            status = manager.status(submission.run_id)
            assert status.state == "complete"
            _, direct = run_experiment("fig3", ExperimentProfile.smoke())
            assert manager.report(submission.run_id) == direct + "\n"

    def test_duplicate_submission_served_from_cache(self, tmp_path, monkeypatch):
        with _manager(tmp_path) as manager:
            first = manager.submit(FIG3, tenant="alice")
            assert manager.wait_idle(timeout=120)

            def boom(*args, **kwargs):
                raise AssertionError("cached submission must not execute")

            monkeypatch.setattr(api, "run_submitted", boom)
            second = manager.submit(FIG3, tenant="bob")
            assert second.cached is True
            assert second.run_id == first.run_id
            status = manager.status(first.run_id)
            assert set(status.tenants) == {"alice", "bob"}

    def test_in_flight_submission_joined_not_duplicated(self, tmp_path, monkeypatch):
        release = threading.Event()
        real = api.run_submitted

        def slow(store_root, run_id, exec_plan=None):
            release.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", slow)
        with _manager(tmp_path, max_concurrency=1) as manager:
            first = manager.submit(FIG3, tenant="alice")
            joined = manager.submit(FIG3, tenant="bob")
            assert joined.run_id == first.run_id
            assert joined.cached is False
            assert joined.scheduled is False  # no second queue entry
            release.set()
            assert manager.wait_idle(timeout=120)
            assert manager.status(first.run_id).state == "complete"

    def test_concurrency_limit_queues_rather_than_rejects(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        with _manager(tmp_path, max_concurrency=1) as manager:
            first = manager.submit(FIG3)
            assert started.wait(timeout=30)
            # A different run beyond the worker count queues quietly.
            second = manager.submit({"experiment": "fig3", "profile": "smoke",
                                     "seed": 1})
            assert second.run_id != first.run_id
            states = manager.job_states()
            assert states[first.run_id] == "running"
            assert states[second.run_id] == "queued"
            gate.set()
            assert manager.wait_idle(timeout=240)
            assert manager.status(first.run_id).state == "complete"
            assert manager.status(second.run_id).state == "complete"

    def test_full_queue_refuses_with_503(self, tmp_path, monkeypatch):
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        with _manager(tmp_path, max_concurrency=1, queue_size=1) as manager:
            manager.submit(FIG3)
            assert started.wait(timeout=30)
            # Worker busy; these two race for the single queue slot.
            submissions = []
            error = None
            for seed in (1, 2, 3):
                try:
                    submissions.append(
                        manager.submit(
                            {"experiment": "fig3", "profile": "smoke",
                             "seed": seed}
                        )
                    )
                except QueueFullError as exc:
                    error = exc
            assert error is not None
            assert error.http_status == 503
            assert error.to_dict()["code"] == "queue-full"
            gate.set()
            manager.wait_idle(timeout=240)

    def test_cancel_queued_job(self, tmp_path, monkeypatch):
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        with _manager(tmp_path, max_concurrency=1) as manager:
            manager.submit(FIG3)
            assert started.wait(timeout=30)
            queued = manager.submit(
                {"experiment": "fig3", "profile": "smoke", "seed": 9}
            )
            cancelled = manager.cancel(queued.run_id)
            assert cancelled.state == "cancelled"
            gate.set()
            assert manager.wait_idle(timeout=240)
            # The cancelled run was skipped at dispatch, not executed.
            assert manager.status(queued.run_id).state == "cancelled"
            with pytest.raises(api.RunConflictError):
                manager.report(queued.run_id)

    def test_submit_after_close_rejected(self, tmp_path):
        manager = _manager(tmp_path).start()
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.submit(FIG3)

    def test_stats_shape(self, tmp_path):
        with _manager(tmp_path) as manager:
            stats = manager.stats()
            assert stats["queued"] == 0
            assert stats["running"] == 0
            assert stats["max_concurrency"] == 2
            assert stats["executor"] is not None


# ---------------------------------------------------------------------------
# The HTTP stack: server + client on an ephemeral port.
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    server = make_server(
        ServiceConfig(
            store_root=str(tmp_path / "svc"),
            max_concurrency=2,
            transport="serial",
        )
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout=120.0)
    try:
        yield client, server
    finally:
        server.shutdown()
        server.server_close()
        server.manager.close()


class TestHttpService:
    def test_submit_poll_fetch_round_trip(self, service):
        client, _server = service
        submission = client.submit_experiment(
            "fig3", profile="smoke", tenant="alice"
        )
        assert submission["cached"] is False
        status = client.wait(submission["run_id"], timeout=240)
        assert status["state"] == "complete"
        assert status["cells"]["failed"] == 0
        report = client.report(submission["run_id"])
        _, direct = run_experiment("fig3", ExperimentProfile.smoke())
        assert report == direct + "\n"

    def test_duplicate_submission_cached_across_tenants(self, service):
        client, _server = service
        first = client.submit_experiment("fig3", profile="smoke", tenant="a")
        client.wait(first["run_id"], timeout=240)
        second = client.submit_experiment("fig3", profile="smoke", tenant="b")
        assert second["cached"] is True
        assert second["run_id"] == first["run_id"]
        runs = client.runs()
        assert len(runs) == 1
        assert set(runs[0]["tenants"]) == {"a", "b"}
        assert client.runs(tenant="a") and client.runs(tenant="zzz") == []

    def test_invalid_submission_structured_400(self, service):
        client, _server = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_experiment("fig99", profile="smoke")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-request"
        assert excinfo.value.field == "experiment"
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"experiment": "fig3", "profile": "enormous"})
        assert excinfo.value.status == 400
        assert excinfo.value.field == "profile"

    def test_unknown_run_structured_404(self, service):
        client, _server = service
        for call in (client.status, client.report, client.cancel):
            with pytest.raises(ServiceClientError) as excinfo:
                call("missing-000000000000")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "unknown-run"

    def test_unknown_endpoint_404(self, service):
        client, _server = service
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/v2/runs")
        assert excinfo.value.status == 404

    def test_malformed_body_400(self, service):
        client, _server = service
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/v1/runs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_report_before_completion_409(self, service, monkeypatch):
        client, server = service
        gate = threading.Event()
        started = threading.Event()
        real = api.run_submitted

        def gated(store_root, run_id, exec_plan=None):
            started.set()
            gate.wait(timeout=60)
            return real(store_root, run_id, exec_plan=exec_plan)

        monkeypatch.setattr(api, "run_submitted", gated)
        submission = client.submit_experiment("fig3", profile="smoke")
        assert started.wait(timeout=30)
        with pytest.raises(ServiceClientError) as excinfo:
            client.report(submission["run_id"])
        assert excinfo.value.status == 409
        assert excinfo.value.code == "run-conflict"
        gate.set()
        client.wait(submission["run_id"], timeout=240)

    def test_health_endpoint(self, service):
        client, _server = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["max_concurrency"] == 2
        assert "executor" in health
