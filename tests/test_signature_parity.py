"""Incremental cache-signature parity (property-based).

:class:`SignatureTracker` promises that the ``(signature, hash)`` it
maintains under arbitrary move/swap/rebuild sequences is *exactly*
what a from-scratch derivation produces: the signature equals
``compiled.signature(mapping)`` of the equivalent mapping walk, and
the hash equals ``compiled.signature_hash`` of that signature.  The
evaluator's :class:`SignatureKey` must then make the descriptor and
Mapping paths interoperate hit-for-hit in the LRU cache.  Hypothesis
drives randomized operation sequences; the suite is wired into the CI
parity pass (plus an armed ``REPRO_VALIDATE_SIGNATURES=1`` run).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import MPSoC
from repro.mapping import (
    Mapping,
    MappingEvaluator,
    SignatureKey,
    SignatureTracker,
    set_signature_validation,
)
from repro.taskgraph import RandomGraphConfig, mpeg2_decoder, random_task_graph

NUM_CORES = 4


def _graph(num_tasks):
    if num_tasks == 11:
        return mpeg2_decoder()
    return random_task_graph(RandomGraphConfig(num_tasks=num_tasks), seed=num_tasks)


# One operation: ("move", task_pick, core_pick), ("swap", a_pick, b_pick)
# or ("rebuild", assignment_seed, 0).  Picks are reduced modulo the
# current sizes inside the test, so any integers are valid.
_operations = st.lists(
    st.tuples(
        st.sampled_from(["move", "swap", "rebuild"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=40,
)


class TestTrackerParity:
    @settings(max_examples=60, deadline=None)
    @given(
        num_tasks=st.sampled_from([2, 5, 11, 17, 29]),
        initial_seed=st.integers(min_value=0, max_value=2**20),
        operations=_operations,
    )
    def test_tracker_matches_rebuild_after_any_sequence(
        self, num_tasks, initial_seed, operations
    ):
        graph = _graph(num_tasks)
        compiled = graph.compiled()
        names = compiled.names
        import random as _random

        seeder = _random.Random(initial_seed)
        mapping = Mapping(
            {name: seeder.randrange(NUM_CORES) for name in names}, NUM_CORES
        )
        signature, sig_hash = mapping.signature_info(compiled)
        tracker = SignatureTracker(compiled, signature, NUM_CORES, sig_hash)
        for kind, first, second in operations:
            if kind == "move":
                task = first % compiled.num_tasks
                core = second % NUM_CORES
                if core == mapping.core_of(names[task]):
                    core = (core + 1) % NUM_CORES
                preview = tracker.preview_move(task, core)
                mapping = mapping.move(names[task], core)
                tracker.commit(*preview)
            elif kind == "swap" and compiled.num_tasks >= 2:
                task_a = first % compiled.num_tasks
                task_b = second % compiled.num_tasks
                if task_a == task_b:
                    task_b = (task_b + 1) % compiled.num_tasks
                preview = tracker.preview_swap(task_a, task_b)
                mapping = mapping.swap(names[task_a], names[task_b])
                tracker.commit(*preview)
            else:
                reseeder = _random.Random(first)
                mapping = Mapping(
                    {name: reseeder.randrange(NUM_CORES) for name in names},
                    NUM_CORES,
                )
                tracker.rebuild(compiled.signature(mapping))
            # Exact parity with the from-scratch derivation.
            assert tracker.signature == compiled.signature(mapping)
            assert tracker.signature_hash == compiled.signature_hash(
                tracker.signature, NUM_CORES
            )

    @settings(max_examples=25, deadline=None)
    @given(
        num_tasks=st.sampled_from([5, 11, 17]),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_preview_does_not_mutate_anchor(self, num_tasks, seed):
        graph = _graph(num_tasks)
        compiled = graph.compiled()
        import random as _random

        seeder = _random.Random(seed)
        signature = tuple(
            seeder.randrange(NUM_CORES) for _ in range(compiled.num_tasks)
        )
        tracker = SignatureTracker(compiled, signature, NUM_CORES)
        anchor = (tracker.signature, tracker.signature_hash)
        tracker.preview_move(0, (signature[0] + 1) % NUM_CORES)
        if compiled.num_tasks >= 2:
            tracker.preview_swap(0, 1)
        assert (tracker.signature, tracker.signature_hash) == anchor
        assert tracker.rebuilds == 0


class TestTrackerValidation:
    def test_armed_validation_catches_corruption(self, mpeg2):
        compiled = mpeg2.compiled()
        signature = (0,) * compiled.num_tasks
        tracker = SignatureTracker(compiled, signature, NUM_CORES)
        good_signature, good_hash = tracker.preview_move(0, 1)
        set_signature_validation(True)
        try:
            tracker.commit(good_signature, good_hash)  # parity holds
            with pytest.raises(AssertionError, match="diverged"):
                tracker.commit(good_signature, good_hash ^ 1)
        finally:
            set_signature_validation(False)

    def test_rejects_wrong_length(self, mpeg2):
        compiled = mpeg2.compiled()
        with pytest.raises(ValueError, match="entries"):
            SignatureTracker(compiled, (0, 1), NUM_CORES)
        tracker = SignatureTracker(compiled, (0,) * compiled.num_tasks, NUM_CORES)
        with pytest.raises(ValueError, match="entries"):
            tracker.rebuild((0,))

    def test_signature_hash_rejects_wrong_length(self, mpeg2):
        compiled = mpeg2.compiled()
        with pytest.raises(ValueError, match="entries"):
            compiled.signature_hash((0, 1, 2), NUM_CORES)


class TestSignatureKeyInterop:
    """Descriptor probes and Mapping probes share one cache."""

    def test_key_equality_and_hash_consistency(self, mpeg2):
        compiled = mpeg2.compiled()
        mapping = Mapping.round_robin(mpeg2, NUM_CORES)
        signature, sig_hash = mapping.signature_info(compiled)
        scaling = (2,) * NUM_CORES
        from_mapping = SignatureKey(signature, NUM_CORES, scaling, sig_hash)
        tracker = SignatureTracker(compiled, signature, NUM_CORES)
        from_tracker = SignatureKey(
            tracker.signature, NUM_CORES, scaling, tracker.signature_hash
        )
        assert from_mapping == from_tracker
        assert hash(from_mapping) == hash(from_tracker)
        other_scaling = SignatureKey(signature, NUM_CORES, (1,) * NUM_CORES, sig_hash)
        assert from_mapping != other_scaling
        assert from_mapping != "not-a-key"

    def test_evaluate_then_evaluate_signature_hits(self, mpeg2):
        evaluator = MappingEvaluator(mpeg2, MPSoC.paper_reference(NUM_CORES))
        mapping = Mapping.round_robin(mpeg2, NUM_CORES)
        scaling = (2,) * NUM_CORES
        first = evaluator.evaluate(mapping, scaling)
        signature, sig_hash = mapping.signature_info(evaluator.graph.compiled())
        second = evaluator.evaluate_signature(
            signature, scaling, signature_hash=sig_hash
        )
        assert second is first  # a genuine cache hit, not a re-evaluation
        assert evaluator.cache_hits == 1
        assert evaluator.cache_misses == 1

    def test_evaluate_signature_then_evaluate_hits(self, mpeg2):
        evaluator = MappingEvaluator(mpeg2, MPSoC.paper_reference(NUM_CORES))
        mapping = Mapping.round_robin(mpeg2, NUM_CORES)
        scaling = (2,) * NUM_CORES
        signature = tuple(
            mapping.core_of(name) for name in evaluator.graph.task_names()
        )
        first = evaluator.evaluate_signature(signature, scaling)
        second = evaluator.evaluate(mapping, scaling)
        assert second is first
        assert evaluator.cache_hits == 1

    def test_materialized_mapping_matches_template_order(self, mpeg2):
        evaluator = MappingEvaluator(mpeg2, MPSoC.paper_reference(NUM_CORES))
        # round_robin inserts in topological order — NOT compiled name
        # order — and neighbour mappings inherit that order.
        template = Mapping.round_robin(mpeg2, NUM_CORES)
        compiled = evaluator.graph.compiled()
        signature, _ = template.signature_info(compiled)
        moved = list(signature)
        moved[0] = (moved[0] + 1) % NUM_CORES
        point = evaluator.evaluate_signature(
            tuple(moved), (2,) * NUM_CORES, template=template
        )
        expected = template.move(compiled.names[0], moved[0])
        assert point.mapping == expected
        assert point.mapping.core_groups() == expected.core_groups()
        assert list(point.mapping.as_dict()) == list(expected.as_dict())

    def test_evaluate_signature_counters_match_evaluate(self, mpeg2):
        scaling = (2,) * NUM_CORES
        signature_path = MappingEvaluator(mpeg2, MPSoC.paper_reference(NUM_CORES))
        mapping_path = MappingEvaluator(mpeg2, MPSoC.paper_reference(NUM_CORES))
        compiled = mpeg2.compiled()
        mappings = [
            Mapping.round_robin(mpeg2, NUM_CORES),
            Mapping.round_robin(mpeg2, NUM_CORES).move("t3", 2),
            Mapping.round_robin(mpeg2, NUM_CORES),  # revisit -> hit
        ]
        for mapping in mappings:
            via_mapping = mapping_path.evaluate(mapping, scaling)
            via_signature = signature_path.evaluate_signature(
                compiled.signature(mapping), scaling, template=mapping
            )
            assert via_signature.expected_seus == via_mapping.expected_seus
            assert via_signature.makespan_s == via_mapping.makespan_s
            assert via_signature.power_mw == via_mapping.power_mw
        assert signature_path.cache_info == mapping_path.cache_info

    def test_evaluate_signature_rejects_bad_input(self, mpeg2):
        evaluator = MappingEvaluator(mpeg2, MPSoC.paper_reference(NUM_CORES))
        with pytest.raises(ValueError, match="entries"):
            evaluator.evaluate_signature((0, 1), (2,) * NUM_CORES)
        bad_core = [0] * mpeg2.num_tasks
        bad_core[0] = NUM_CORES  # outside the platform
        with pytest.raises(ValueError, match="outside"):
            evaluator.evaluate_signature(tuple(bad_core), (2,) * NUM_CORES)
        bad_core[0] = -1  # negative indices must not wrap into the tables
        with pytest.raises(ValueError, match="outside"):
            evaluator.evaluate_signature(tuple(bad_core), (2,) * NUM_CORES)

    def test_uncached_evaluator_still_evaluates(self, mpeg2):
        evaluator = MappingEvaluator(
            mpeg2, MPSoC.paper_reference(NUM_CORES), cache_size=0
        )
        signature = (0,) * mpeg2.num_tasks
        point = evaluator.evaluate_signature(signature, (2,) * NUM_CORES)
        assert point.expected_seus > 0
        assert evaluator.cache_misses == 1
        assert evaluator.cache_entries == 0


class TestMappingSignatureInfo:
    def test_memoized_per_compiled_view(self, mpeg2):
        compiled = mpeg2.compiled()
        mapping = Mapping.round_robin(mpeg2, NUM_CORES)
        first = mapping.signature_info(compiled)
        assert mapping.signature_info(compiled) == first
        assert first[0] == compiled.signature(mapping)
        assert first[1] == compiled.signature_hash(first[0], NUM_CORES)

    def test_pickle_drops_the_memo_but_keeps_the_value(self, mpeg2):
        import pickle

        compiled = mpeg2.compiled()
        mapping = Mapping.round_robin(mpeg2, NUM_CORES)
        mapping.signature_info(compiled)
        clone = pickle.loads(pickle.dumps(mapping))
        assert clone == mapping
        assert clone._sig_memo is None
        assert list(clone.as_dict()) == list(mapping.as_dict())  # order kept
        assert clone.signature_info(compiled) == mapping.signature_info(compiled)

    def test_hash_tables_are_deterministic(self, mpeg2):
        compiled = mpeg2.compiled()
        table_a = compiled.signature_table(NUM_CORES)
        # A fresh compiled view of an identical graph builds the same
        # table — hashes agree across process-pool workers.
        rebuilt = mpeg2_decoder().compiled()
        table_b = rebuilt.signature_table(NUM_CORES)
        assert table_a == table_b
        assert compiled.signature_table(7) != table_a  # width-specific
