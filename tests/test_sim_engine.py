"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import DiscreteEventEngine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = DiscreteEventEngine()
        log = []
        engine.schedule_at(2.0, lambda: log.append("late"))
        engine.schedule_at(1.0, lambda: log.append("early"))
        engine.run()
        assert log == ["early", "late"]

    def test_priority_breaks_ties(self):
        engine = DiscreteEventEngine()
        log = []
        engine.schedule_at(1.0, lambda: log.append("b"), priority=1)
        engine.schedule_at(1.0, lambda: log.append("a"), priority=0)
        engine.run()
        assert log == ["a", "b"]

    def test_insertion_order_breaks_remaining_ties(self):
        engine = DiscreteEventEngine()
        log = []
        engine.schedule_at(1.0, lambda: log.append(1))
        engine.schedule_at(1.0, lambda: log.append(2))
        engine.run()
        assert log == [1, 2]

    def test_clock_advances(self):
        engine = DiscreteEventEngine()
        times = []
        engine.schedule_at(0.5, lambda: times.append(engine.now))
        engine.schedule_at(1.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [0.5, 1.5]
        assert engine.now == 1.5

    def test_schedule_after(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(1.0, lambda: engine.schedule_after(0.5, lambda: None))
        engine.run()
        assert engine.now == pytest.approx(1.5)

    def test_rejects_past_events(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            DiscreteEventEngine().schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        engine = DiscreteEventEngine()
        log = []
        engine.schedule_at(1.0, lambda: engine.schedule_at(2.0, lambda: log.append("x")))
        engine.run()
        assert log == ["x"]


class TestDrivers:
    def test_step_returns_event(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(1.0, lambda: None, label="only")
        event = engine.step()
        assert event is not None and event.label == "only"
        assert engine.step() is None

    def test_run_max_events(self):
        engine = DiscreteEventEngine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending == 2

    def test_run_until(self):
        engine = DiscreteEventEngine()
        log = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda t=t: log.append(t))
        executed = engine.run_until(2.0)
        assert executed == 2
        assert log == [1.0, 2.0]
        assert engine.now == 2.0

    def test_counters(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.pending == 2
        engine.run()
        assert engine.processed == 2
        assert engine.pending == 0

    def test_reset(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending == 0
        assert engine.processed == 0
        engine.schedule_at(0.1, lambda: None)  # past-time OK after reset
        engine.run()
