"""Tests for the MPSoC simulator, occupancy traces and execution traces."""

import pytest

from repro.mapping import Mapping
from repro.mapping.metrics import per_core_register_bits
from repro.sim import MPSoCSimulator, OccupancyInterval, OccupancyTrace
from repro.sim.trace import ExecutionTrace, TraceRecord
from repro.taskgraph.registers import Register


class TestOccupancyInterval:
    def test_derived_quantities(self):
        interval = OccupancyInterval(
            core=0,
            start_s=1.0,
            end_s=3.0,
            registers=frozenset({Register("r", 50)}),
            frequency_hz=10.0,
        )
        assert interval.duration_s == pytest.approx(2.0)
        assert interval.cycles == pytest.approx(20.0)
        assert interval.bits == 50
        assert interval.exposure_bit_cycles == pytest.approx(1000.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"core": -1},
            {"end_s": 0.5},
            {"frequency_hz": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            core=0,
            start_s=1.0,
            end_s=2.0,
            registers=frozenset(),
            frequency_hz=1.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            OccupancyInterval(**base)


class TestOccupancyTrace:
    def test_aggregation(self):
        trace = OccupancyTrace()
        r = frozenset({Register("r", 10)})
        trace.add(OccupancyInterval(0, 0.0, 1.0, r, 100.0))
        trace.add(OccupancyInterval(0, 1.0, 2.0, r, 100.0))
        trace.add(OccupancyInterval(1, 0.0, 4.0, r, 100.0))
        assert trace.busy_cycles(0) == pytest.approx(200.0)
        assert trace.exposure_bit_cycles(0) == pytest.approx(2000.0)
        assert trace.time_average_bits(0) == pytest.approx(10.0)
        assert trace.cores() == (0, 1)
        assert trace.total_exposure_bit_cycles() == pytest.approx(6000.0)
        assert trace.per_core_exposure() == {
            0: pytest.approx(2000.0),
            1: pytest.approx(4000.0),
        }

    def test_empty_core(self):
        trace = OccupancyTrace()
        assert trace.time_average_bits(3) == 0.0
        assert len(trace) == 0


class TestSimulatorStaticResidency:
    def test_time_average_equals_eq8_union(self, mpeg2, platform4, rr_mapping4):
        # The validation DESIGN.md promises: the trace's Eq. (4) average
        # equals Eq. (8)'s union cardinality under static residency.
        simulator = MPSoCSimulator(mpeg2, platform4, scaling=(1, 1, 1, 1))
        result = simulator.run(rr_mapping4)
        expected = per_core_register_bits(mpeg2, rr_mapping4)
        for core in range(4):
            assert result.time_average_register_bits(core) == pytest.approx(
                expected[core]
            )

    def test_exposure_spans_full_window(self, mpeg2, platform4, rr_mapping4):
        simulator = MPSoCSimulator(mpeg2, platform4, scaling=(1, 1, 1, 1))
        result = simulator.run(rr_mapping4)
        for core in range(4):
            intervals = result.occupancy.intervals_of(core)
            assert intervals[0].start_s == pytest.approx(0.0)
            assert intervals[-1].end_s == pytest.approx(result.makespan_s)

    def test_makespan_matches_scheduler(self, mpeg2, platform4, rr_mapping4):
        simulator = MPSoCSimulator(mpeg2, platform4, scaling=(2, 2, 2, 2))
        result = simulator.run(rr_mapping4)
        assert result.makespan_s == pytest.approx(result.schedule.makespan_s())

    def test_busy_cycles_reported(self, mpeg2, platform4, rr_mapping4):
        simulator = MPSoCSimulator(mpeg2, platform4, scaling=(1, 1, 1, 1))
        result = simulator.run(rr_mapping4)
        for core in range(4):
            assert result.busy_cycles[core] == result.schedule.busy_cycles(core)


class TestSimulatorAccumulateResidency:
    def test_usage_ramps_up(self, mpeg2, platform4, rr_mapping4):
        simulator = MPSoCSimulator(
            mpeg2, platform4, scaling=(1, 1, 1, 1), residency="accumulate"
        )
        result = simulator.run(rr_mapping4)
        for core in range(4):
            bits = [interval.bits for interval in result.occupancy.intervals_of(core)]
            assert bits == sorted(bits)  # monotone non-decreasing

    def test_accumulate_bounded_by_union(self, mpeg2, platform4, rr_mapping4):
        simulator = MPSoCSimulator(
            mpeg2, platform4, scaling=(1, 1, 1, 1), residency="accumulate"
        )
        result = simulator.run(rr_mapping4)
        union = per_core_register_bits(mpeg2, rr_mapping4)
        for core in range(4):
            assert result.time_average_register_bits(core) <= union[core] + 1e-9

    def test_accumulate_exposure_less_than_static(self, mpeg2, platform4, rr_mapping4):
        static = MPSoCSimulator(mpeg2, platform4, scaling=(1, 1, 1, 1)).run(rr_mapping4)
        accumulate = MPSoCSimulator(
            mpeg2, platform4, scaling=(1, 1, 1, 1), residency="accumulate"
        ).run(rr_mapping4)
        assert (
            accumulate.occupancy.total_exposure_bit_cycles()
            < static.occupancy.total_exposure_bit_cycles()
        )


class TestSimulatorValidation:
    def test_rejects_unknown_policy(self, mpeg2, platform4):
        with pytest.raises(ValueError):
            MPSoCSimulator(mpeg2, platform4, residency="magic")

    def test_rejects_bad_scaling(self, mpeg2, platform4):
        with pytest.raises(ValueError):
            MPSoCSimulator(mpeg2, platform4, scaling=(9, 1, 1, 1))
        with pytest.raises(ValueError):
            MPSoCSimulator(mpeg2, platform4, scaling=(1, 1))

    def test_rejects_incomplete_mapping(self, mpeg2, platform4):
        simulator = MPSoCSimulator(mpeg2, platform4)
        with pytest.raises(ValueError):
            simulator.run(Mapping({"t1": 0}, 4))


class TestExecutionTrace:
    def test_collects_start_finish(self, mpeg2, platform4, rr_mapping4):
        simulator = MPSoCSimulator(mpeg2, platform4, scaling=(1, 1, 1, 1))
        result = simulator.run(rr_mapping4, collect_trace=True)
        trace = result.execution_trace
        assert trace is not None
        starts = [record for record in trace if record.kind == "start"]
        finishes = [record for record in trace if record.kind == "finish"]
        assert len(starts) == mpeg2.num_tasks
        assert len(finishes) == mpeg2.num_tasks

    def test_trace_disabled_by_default(self, mpeg2, platform4, rr_mapping4):
        result = MPSoCSimulator(mpeg2, platform4).run(rr_mapping4)
        assert result.execution_trace is None

    def test_per_task_ordering(self, mpeg2, platform4, rr_mapping4):
        result = MPSoCSimulator(mpeg2, platform4).run(rr_mapping4, collect_trace=True)
        for name in mpeg2.task_names():
            records = result.execution_trace.of_task(name)
            kinds = [record.kind for record in records]
            assert kinds == ["start", "finish"]

    def test_render(self, mpeg2, platform4, rr_mapping4):
        result = MPSoCSimulator(mpeg2, platform4).run(rr_mapping4, collect_trace=True)
        text = result.execution_trace.render()
        assert "start" in text and "t11" in text

    def test_record_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(time_s=0.0, core=0, kind="bogus", task="t")
        with pytest.raises(ValueError):
            TraceRecord(time_s=-1.0, core=0, kind="start", task="t")

    def test_trace_rejects_time_travel(self):
        trace = ExecutionTrace()
        trace.add(TraceRecord(time_s=1.0, core=0, kind="start", task="a"))
        with pytest.raises(ValueError):
            trace.add(TraceRecord(time_s=0.5, core=0, kind="start", task="b"))

    def test_of_core(self):
        trace = ExecutionTrace()
        trace.add(TraceRecord(time_s=0.0, core=1, kind="start", task="a"))
        trace.add(TraceRecord(time_s=1.0, core=2, kind="start", task="b"))
        assert len(trace.of_core(1)) == 1
