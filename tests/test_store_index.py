"""The SQLite sidecar index: parity, concurrency, compaction, sharding.

The contract under test (see :mod:`repro.store.index`): the index is a
pure cache over ``records.jsonl`` + ``manifest.json`` — an index-served
listing must be **identical** to the directory walk it caches, deleting
``index.sqlite`` must cost one listing (never an answer), concurrent
appenders must never lose cell updates, and a reader racing compaction
must see the old records file or the new one, never a torn view.
"""

import json
import shutil
import threading
from dataclasses import dataclass

import pytest

from repro import api
from repro.experiments import ExperimentProfile
from repro.experiments.common import run_cells
from repro.store import (
    MANIFEST_NAME,
    RECORDS_NAME,
    SHARD_MARKER,
    StoreIndex,
    collect_entries,
    compact_records,
    compact_store,
    resolve_run_directory,
    scan_records,
    shard_of,
    sharding_enabled,
)
from repro.store.run_store import FORMAT_VERSION


NUM_GRIDS = 4
CELLS_PER_GRID = 8


def _write_grid(directory, label, *, statuses=None, duplicates=0):
    """One bare grid in the exact on-disk formats (manifest + records)."""
    directory.mkdir(parents=True, exist_ok=True)
    keys = [f"{index:03d}:{label}" for index in range(CELLS_PER_GRID)]
    status = statuses or {key: "done" for key in keys}
    done = sum(1 for value in status.values() if value == "done")
    failed = sum(1 for value in status.values() if value == "failed")
    manifest = {
        "format": FORMAT_VERSION,
        "label": label,
        "fingerprint": f"{abs(hash(label)):016x}"[:16],
        "profile": {"name": "tiny", "seed": 0},
        "cells": keys,
        "status": status,
        "completed": done,
        "failed": failed,
        "total": len(keys),
        "run_status": "complete" if done == len(keys) else "running",
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    with (directory / RECORDS_NAME).open("w", encoding="utf-8") as handle:
        for _ in range(duplicates + 1):
            for key in keys:
                handle.write(
                    json.dumps({"key": key, "status": "ok", "payload": ""})
                    + "\n"
                )
    return manifest


@pytest.fixture
def store_root(tmp_path):
    root = tmp_path / "store"
    for index in range(NUM_GRIDS):
        _write_grid(root / f"grid-{index:02d}", f"grid-{index:02d}")
    return root


def _sidecar_files(root):
    return [root / name for name in
            ("index.sqlite", "index.sqlite-wal", "index.sqlite-shm")]


def _dicts(statuses):
    return [status.to_dict() for status in statuses]


# ---------------------------------------------------------------------------
# Walk/index parity: the cache must be invisible.
# ---------------------------------------------------------------------------


class TestListingParity:
    def test_index_listing_identical_to_walk(self, store_root):
        api._LISTING_CACHE.clear()
        walked = api.list_runs(store_root, use_index=False)
        indexed = api.list_runs(store_root, use_index=True)
        assert _dicts(indexed) == _dicts(walked)
        assert [s.directory for s in indexed] == [s.directory for s in walked]
        assert [s.cells for s in indexed] == [s.cells for s in walked]

    def test_deleting_sidecar_costs_one_listing_never_an_answer(
        self, store_root
    ):
        api._LISTING_CACHE.clear()
        reference = _dicts(api.list_runs(store_root, use_index=True))
        for path in _sidecar_files(store_root):
            if path.exists():
                path.unlink()
        api._LISTING_CACHE.clear()
        assert _dicts(api.list_runs(store_root, use_index=True)) == reference
        # ... and the answer rebuilt the sidecar on its way out.
        assert (store_root / "index.sqlite").exists()

    def test_rebuild_index_counts_runs(self, store_root):
        assert api.rebuild_index(store_root) == NUM_GRIDS

    def test_entries_identical_to_collect_entries(self, store_root):
        index = StoreIndex.ensure(store_root)
        walked = collect_entries(store_root)
        index.replace_all(walked)
        assert index.entries() == walked

    def test_stale_index_is_corrected_by_rebuild(self, store_root):
        index = StoreIndex.ensure(store_root)
        index.replace_all(collect_entries(store_root))
        # A new grid lands without touching the index (simulated
        # out-of-band writer): the walk sees it, the stale index not.
        _write_grid(store_root / "grid-99", "grid-99")
        assert len(index.entries()) == NUM_GRIDS
        index.replace_all(collect_entries(store_root))
        assert len(index.entries()) == NUM_GRIDS + 1

    def test_lookup_run_by_directory_name_and_label(self, store_root):
        index = StoreIndex.ensure(store_root)
        index.replace_all(collect_entries(store_root))
        entry = index.lookup_run("grid-02")
        assert entry is not None
        assert entry.total == CELLS_PER_GRID
        assert index.lookup_run("no-such-run") is None

    def test_listing_memo_invalidated_by_index_writes(self, store_root):
        api._LISTING_CACHE.clear()
        first = api.list_runs(store_root, use_index=True)
        assert _dicts(api.list_runs(store_root, use_index=True)) == _dicts(first)
        # An index write moves mtime_ns (WAL included) -> memo drops.
        index = StoreIndex.at(store_root)
        stamp = index.mtime_ns()
        _write_grid(store_root / "grid-77", "grid-77")
        index.replace_all(collect_entries(store_root))
        assert index.mtime_ns() != stamp
        assert len(api.list_runs(store_root, use_index=True)) == NUM_GRIDS + 1


class TestIncrementalUpdates:
    """RunStore appends keep the sidecar fresh without a rebuild."""

    @staticmethod
    def _profile(root):
        return ExperimentProfile(
            name="tiny", search_iterations=10, sa_iterations=10, seed=0
        ).with_store(str(root))

    def test_run_cells_streams_into_the_index(self, tmp_path):
        profile = self._profile(tmp_path)
        jobs = [_SquareJob(value, profile) for value in range(3)]
        assert run_cells(jobs, profile, label="grid") == [0, 1, 4]
        index = StoreIndex.at(tmp_path)
        assert index.exists()
        entry = index.lookup_run("grid")
        assert entry is not None
        assert (entry.state, entry.completed) == ("complete", 3)
        # No rebuild between: the entry matches the walk field for field.
        assert index.entries() == collect_entries(tmp_path)

    def test_kill_switch_disables_the_sidecar(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_NO_INDEX", "1")
        profile = self._profile(tmp_path)
        run_cells([_SquareJob(7, profile)], profile, label="grid")
        assert not (tmp_path / "index.sqlite").exists()
        # The walk still answers, index-free.
        api._LISTING_CACHE.clear()
        statuses = api.list_runs(tmp_path, use_index=False)
        assert [status.state for status in statuses] == ["complete"]

    def test_no_sidecar_inside_grid_directories(self, tmp_path):
        profile = self._profile(tmp_path)
        run_cells([_SquareJob(2, profile)], profile, label="grid")
        assert (tmp_path / "index.sqlite").exists()
        assert not (tmp_path / "grid" / "index.sqlite").exists()

    def test_fresh_sidecar_is_seeded_with_preexisting_runs(self, tmp_path):
        """Existence implies completeness.

        A grid opened in a store that already holds runs (but no
        sidecar yet) must not create an index containing only its own
        row — readers trust an existing index, so the older runs
        would silently vanish from every listing.
        """
        _write_grid(tmp_path / "older", "older")
        assert not (tmp_path / "index.sqlite").exists()
        profile = self._profile(tmp_path)
        run_cells([_SquareJob(3, profile)], profile, label="newer")
        index = StoreIndex.at(tmp_path)
        assert index.exists()
        assert {entry.run_id for entry in index.entries()} == {
            "older",
            "newer",
        }
        assert index.entries() == collect_entries(tmp_path)


@dataclass(frozen=True)
class _SquareJob:
    value: int
    profile: ExperimentProfile

    def run(self):
        return self.value * self.value


# ---------------------------------------------------------------------------
# Concurrency: WAL + busy retries must never lose an update.
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_two_threads_appending_to_same_label_lose_nothing(
        self, store_root
    ):
        """Interleaved per-cell upserts from two threads all land."""
        directory = store_root / "grid-00"
        manifest = _write_grid(
            directory,
            "grid-00",
            statuses={
                f"{index:03d}:grid-00": "pending"
                for index in range(CELLS_PER_GRID)
            },
        )
        StoreIndex.ensure(store_root).replace_all(collect_entries(store_root))
        barrier = threading.Barrier(2)
        errors = []

        def worker(offset):
            index = StoreIndex.at(store_root)
            barrier.wait()
            try:
                for position in range(offset, CELLS_PER_GRID, 2):
                    index.update_grid_cell(
                        directory,
                        manifest,
                        f"{position:03d}:grid-00",
                        "done",
                    )
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(offset,))
            for offset in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        entry = StoreIndex.at(store_root).lookup_run("grid-00")
        assert entry is not None
        assert all(
            entry.cell_status[key] == "done" for key in entry.cells
        ), entry.cell_status

    def test_writer_waits_out_a_held_write_lock(self, store_root):
        """The BEGIN IMMEDIATE retry + busy_timeout ride out a writer."""
        import sqlite3
        import time

        index = StoreIndex.ensure(store_root)
        index.replace_all(collect_entries(store_root))
        holder = sqlite3.connect(
            str(store_root / "index.sqlite"), check_same_thread=False
        )
        holder.execute("BEGIN IMMEDIATE")
        released = threading.Event()

        def release_soon():
            time.sleep(0.3)
            holder.commit()
            holder.close()
            released.set()

        thread = threading.Thread(target=release_soon)
        thread.start()
        directory = store_root / "grid-01"
        manifest = json.loads(
            (directory / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        # Blocks on the held lock, then succeeds — never raises.
        index.update_grid_cell(directory, manifest, "000:grid-01", "failed")
        thread.join()
        assert released.is_set()
        entry = index.lookup_run("grid-01")
        assert entry.cell_status["000:grid-01"] == "failed"


# ---------------------------------------------------------------------------
# Compaction: latest-wins rewrite, atomic against readers.
# ---------------------------------------------------------------------------


class TestCompaction:
    def test_keeps_final_record_per_key_verbatim(self, tmp_path):
        records = tmp_path / RECORDS_NAME
        lines = [
            json.dumps({"key": "a", "status": "error", "error": "boom"}),
            json.dumps({"key": "b", "status": "ok", "payload": "YmI="}),
            json.dumps({"key": "a", "status": "ok", "payload": "YWE="}),
        ]
        records.write_text("\n".join(lines) + "\n" + '{"torn', encoding="utf-8")
        result = compact_records(records)
        assert (result.kept, result.dropped) == (2, 2)
        kept = records.read_text(encoding="utf-8").splitlines()
        # Final record per key, first-appearance order, byte-verbatim.
        assert kept == [lines[2], lines[1]]

    def test_already_compact_file_is_untouched(self, tmp_path):
        records = tmp_path / RECORDS_NAME
        records.write_text(
            json.dumps({"key": "a", "status": "ok", "payload": ""}) + "\n",
            encoding="utf-8",
        )
        before = records.stat().st_mtime_ns
        result = compact_records(records)
        assert (result.kept, result.dropped) == (1, 0)
        assert records.stat().st_mtime_ns == before  # no churn

    def test_compact_store_walks_every_records_file(self, store_root):
        shutil.rmtree(store_root / "grid-03")
        _write_grid(store_root / "grid-03", "grid-03", duplicates=1)
        results = compact_store(store_root)
        assert len(results) == NUM_GRIDS
        changed = [result for result in results if result.changed]
        assert len(changed) == 1
        assert changed[0].dropped == CELLS_PER_GRID

    def test_reader_mid_compaction_sees_old_or_new_never_torn(self, tmp_path):
        """scan_records racing compact_records: full key set either way."""
        records = tmp_path / RECORDS_NAME
        keys = [f"{index:03d}:x" for index in range(20)]
        duplicated = "".join(
            json.dumps({"key": key, "status": "ok", "payload": ""}) + "\n"
            for key in keys * 2
        ) + '{"torn'
        records.write_text(duplicated, encoding="utf-8")
        expected = set(keys)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                seen = {record.key for record in scan_records(records)}
                if seen != expected:  # pragma: no cover - the failure mode
                    failures.append(seen)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            import os

            for _ in range(60):
                # Restore atomically too — the test races the reader
                # against compaction's rewrite, not against a torn
                # restore of the fixture bytes.
                staging = tmp_path / "staging.jsonl"
                staging.write_text(duplicated, encoding="utf-8")
                os.replace(staging, records)
                result = compact_records(records)
                assert result.kept == len(keys)
        finally:
            stop.set()
            thread.join()
        assert not failures, f"torn read: {failures[0] ^ expected}"


# ---------------------------------------------------------------------------
# Sharded service layouts.
# ---------------------------------------------------------------------------


class TestSharding:
    def test_shard_of_is_two_hex_digits_and_stable(self):
        assert shard_of("run-xyz") == shard_of("run-xyz")
        assert len(shard_of("run-xyz")) == 2
        assert shard_of("run-xyz") != shard_of("run-abc")

    def test_marker_enables_sharding_for_new_runs(self, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir()
        assert not sharding_enabled(tmp_path)
        (runs / SHARD_MARKER).touch()
        assert sharding_enabled(tmp_path)
        run_dir = resolve_run_directory(tmp_path, "run-xyz", create=True)
        assert run_dir == runs / shard_of("run-xyz") / "run-xyz"

    def test_existing_flat_run_wins_over_sharded_layout(self, tmp_path):
        runs = tmp_path / "runs"
        flat = runs / "run-xyz"
        flat.mkdir(parents=True)
        (flat / "run.json").write_text("{}", encoding="utf-8")
        (runs / SHARD_MARKER).touch()
        assert resolve_run_directory(tmp_path, "run-xyz") == flat

    def test_env_variable_enables_sharding(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARD", "1")
        assert sharding_enabled(tmp_path)
        run_dir = resolve_run_directory(tmp_path, "run-abc", create=True)
        assert run_dir.parent.name == shard_of("run-abc")


# ---------------------------------------------------------------------------
# The CLI surface over all of it.
# ---------------------------------------------------------------------------


class TestCliRuns:
    @staticmethod
    def _run(argv):
        from repro.cli import main

        return main(argv)

    def test_runs_listing_identical_with_and_without_index(
        self, store_root, capsys
    ):
        api._LISTING_CACHE.clear()
        assert self._run(
            ["runs", "--store-dir", str(store_root), "--json"]
        ) == 0
        indexed = capsys.readouterr().out
        assert self._run(
            ["runs", "--store-dir", str(store_root), "--json", "--no-index"]
        ) == 0
        walked = capsys.readouterr().out
        assert indexed == walked

    def test_rebuild_and_compact_flags(self, store_root, capsys):
        shutil.rmtree(store_root / "grid-00")
        _write_grid(store_root / "grid-00", "grid-00", duplicates=1)
        assert self._run(
            [
                "runs",
                "--store-dir",
                str(store_root),
                "--rebuild-index",
                "--compact",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert f"rebuilt index: {NUM_GRIDS} run(s)" in captured.err
        assert "compacted 1/" in captured.err
