"""Tests for the task graph data structure and its algorithms."""

import pytest

from repro.taskgraph import Task, TaskGraph
from repro.taskgraph.registers import Register


def diamond() -> TaskGraph:
    """a -> {b, c} -> d with mixed costs."""
    g = TaskGraph(name="diamond")
    g.add_task("a", 100)
    g.add_task("b", 200)
    g.add_task("c", 50)
    g.add_task("d", 100)
    g.add_edge("a", "b", 10)
    g.add_edge("a", "c", 20)
    g.add_edge("b", "d", 30)
    g.add_edge("c", "d", 40)
    return g


class TestTask:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Task(name="", cycles=1)

    @pytest.mark.parametrize("cycles", [0, -5])
    def test_rejects_non_positive_cycles(self, cycles):
        with pytest.raises(ValueError):
            Task(name="t", cycles=cycles)


class TestConstruction:
    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        with pytest.raises(ValueError):
            g.add_task("a", 2)

    def test_edge_to_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        with pytest.raises(KeyError):
            g.add_edge("a", "ghost")

    def test_self_edge_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        g = diamond()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", 5)

    def test_negative_comm_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        g.add_task("b", 1)
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -1)

    def test_private_register_helper(self):
        g = TaskGraph()
        g.add_task("a", 1, private_register_bits=100)
        registers = g.registers_of("a")
        assert len(registers) == 1
        assert next(iter(registers)).bits == 100

    def test_attach_registers(self):
        g = TaskGraph()
        g.add_task("a", 1)
        shared = Register("shared", 64)
        g.attach_registers("a", [shared])
        assert shared in g.registers_of("a")
        with pytest.raises(KeyError):
            g.attach_registers("ghost", [shared])

    def test_from_specs(self):
        g = TaskGraph.from_specs(
            "spec", [("x", 5), ("y", 6)], [("x", "y", 2)], labels={"x": "first"}
        )
        assert g.task("x").label == "first"
        assert g.comm_cycles("x", "y") == 2


class TestQueries:
    def test_counts(self):
        g = diamond()
        assert g.num_tasks == 4
        assert g.num_edges == 4
        assert len(g) == 4

    def test_successors_predecessors(self):
        g = diamond()
        assert set(g.successors("a")) == {"b", "c"}
        assert set(g.predecessors("d")) == {"b", "c"}
        assert g.predecessors("a") == ()

    def test_entry_exit(self):
        g = diamond()
        assert g.entry_tasks() == ("a",)
        assert g.exit_tasks() == ("d",)

    def test_comm_cycles_lookup(self):
        g = diamond()
        assert g.comm_cycles("c", "d") == 40
        with pytest.raises(KeyError):
            g.comm_cycles("a", "d")

    def test_has_edge(self):
        g = diamond()
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_totals(self):
        g = diamond()
        assert g.total_cycles() == 450
        assert g.total_comm_cycles() == 100

    def test_unknown_task_lookup(self):
        with pytest.raises(KeyError):
            diamond().task("ghost")


class TestAlgorithms:
    def test_topological_order_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        position = {name: index for index, name in enumerate(order)}
        for producer, consumer, _ in g.edges():
            assert position[producer] < position[consumer]

    def test_topological_order_deterministic(self):
        assert diamond().topological_order() == diamond().topological_order()

    def test_cycle_detection(self):
        g = TaskGraph()
        g.add_task("a", 1)
        g.add_task("b", 1)
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert not g.is_acyclic()
        with pytest.raises(ValueError):
            g.topological_order()

    def test_validate_empty_graph(self):
        with pytest.raises(ValueError):
            TaskGraph().validate()

    def test_bottom_levels(self):
        g = diamond()
        levels = g.bottom_levels()
        # d: 100; b: 200 + 30 + 100 = 330; c: 50 + 40 + 100 = 190;
        # a: 100 + max(10+330, 20+190) = 440.
        assert levels["d"] == 100
        assert levels["b"] == 330
        assert levels["c"] == 190
        assert levels["a"] == 440

    def test_critical_path(self):
        assert diamond().critical_path_cycles() == 440

    def test_ancestors_descendants(self):
        g = diamond()
        assert g.ancestors("d") == frozenset({"a", "b", "c"})
        assert g.descendants("a") == frozenset({"b", "c", "d"})
        assert g.ancestors("a") == frozenset()

    def test_to_networkx(self):
        nx_graph = diamond().to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.nodes["a"]["cycles"] == 100
        assert nx_graph.edges["c", "d"]["comm_cycles"] == 40

    def test_register_map_roundtrip(self):
        g = TaskGraph()
        shared = Register("s", 10)
        g.add_task("a", 1, registers=[shared], private_register_bits=5)
        g.add_task("b", 1, registers=[shared])
        register_map = g.register_map()
        assert register_map.shared_bits("a", "b") == 10
        assert register_map.task_bits("a") == 15
