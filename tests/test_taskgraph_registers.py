"""Tests for the register-sharing model (Eq. 8 foundations)."""

import pytest

from repro.taskgraph.registers import Register, RegisterMap


def simple_map() -> RegisterMap:
    """Two tasks sharing one 100-bit block plus private blocks."""
    shared = Register("shared", 100)
    return RegisterMap(
        {
            "a": [shared, Register("a.private", 10)],
            "b": [shared, Register("b.private", 20)],
            "c": [Register("c.private", 30)],
        }
    )


class TestRegister:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Register("", 1)

    @pytest.mark.parametrize("bits", [0, -8])
    def test_rejects_non_positive_size(self, bits):
        with pytest.raises(ValueError):
            Register("r", bits)

    def test_value_semantics(self):
        assert Register("r", 8) == Register("r", 8)
        assert len({Register("r", 8), Register("r", 8)}) == 1


class TestRegisterMap:
    def test_task_bits(self):
        m = simple_map()
        assert m.task_bits("a") == 110
        assert m.task_bits("b") == 120
        assert m.task_bits("c") == 30

    def test_union_counts_shared_once(self):
        m = simple_map()
        # a + b co-located: shared counted once.
        assert m.union_bits(["a", "b"]) == 100 + 10 + 20

    def test_union_separated_duplicates(self):
        m = simple_map()
        # Separated, each core re-hosts the shared block.
        separated = m.union_bits(["a"]) + m.union_bits(["b"])
        together = m.union_bits(["a", "b"])
        assert separated - together == 100  # exactly the shared block

    def test_shared_bits(self):
        m = simple_map()
        assert m.shared_bits("a", "b") == 100
        assert m.shared_bits("a", "c") == 0

    def test_total_bits(self):
        assert simple_map().total_bits() == 100 + 10 + 20 + 30

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            simple_map().registers_of("ghost")

    def test_conflicting_sizes_rejected(self):
        with pytest.raises(ValueError):
            RegisterMap(
                {
                    "a": [Register("r", 10)],
                    "b": [Register("r", 20)],
                }
            )

    def test_restricted_to(self):
        m = simple_map().restricted_to(["a", "c"])
        assert set(m.tasks()) == {"a", "c"}
        with pytest.raises(KeyError):
            m.registers_of("b")

    def test_from_bit_sizes(self):
        m = RegisterMap.from_bit_sizes(
            {"a": ["r1", "r2"], "b": ["r2"]}, {"r1": 5, "r2": 7}
        )
        assert m.task_bits("a") == 12
        assert m.shared_bits("a", "b") == 7

    def test_from_bit_sizes_undeclared_register(self):
        with pytest.raises(KeyError):
            RegisterMap.from_bit_sizes({"a": ["ghost"]}, {})

    def test_private_only(self):
        m = RegisterMap.private_only({"a": 5, "b": 7})
        assert m.shared_bits("a", "b") == 0
        assert m.total_bits() == 12

    def test_container_protocol(self):
        m = simple_map()
        assert "a" in m
        assert "ghost" not in m
        assert len(m) == 3
        assert set(iter(m)) == {"a", "b", "c"}

    def test_empty_union(self):
        assert simple_map().union_bits([]) == 0
