"""Tests for the concrete workloads: MPEG-2, Fig. 8, random and synthetic graphs."""

import pytest

from repro.taskgraph import (
    RandomGraphConfig,
    fork_join_graph,
    layered_graph,
    pipeline_graph,
    random_task_graph,
)
from repro.taskgraph.examples import (
    FIG8_COST_UNIT_CYCLES,
    FIG8_DEADLINE_S,
    FIG8_SCALING,
    fig8_register_map,
)
from repro.taskgraph.mpeg2 import (
    MPEG2_COST_UNIT_CYCLES,
    MPEG2_DEADLINE_S,
    mpeg2_deadline_cycles,
    mpeg2_register_map,
)


class TestMPEG2:
    def test_eleven_tasks(self, mpeg2):
        assert mpeg2.num_tasks == 11

    def test_published_costs(self, mpeg2):
        units = {
            "t1": 10, "t2": 15, "t3": 16, "t4": 31, "t5": 25, "t6": 39,
            "t7": 63, "t8": 61, "t9": 48, "t10": 41, "t11": 21,
        }
        for name, expected in units.items():
            assert mpeg2.task(name).cycles == expected * MPEG2_COST_UNIT_CYCLES

    def test_is_dag_with_single_entry_exit(self, mpeg2):
        mpeg2.validate()
        assert mpeg2.entry_tasks() == ("t1",)
        assert mpeg2.exit_tasks() == ("t11",)

    def test_labels_present(self, mpeg2):
        assert mpeg2.task("t7").label == "Inv. DCT by row"

    def test_t5_t6_share_about_6_4_kbit(self, mpeg2):
        # Section III: "tasks t5 and t6 share nearly 6.4kb registers".
        shared = mpeg2.register_map().shared_bits("t5", "t6")
        assert shared == pytest.approx(6400, rel=0.05)

    def test_t6_t7_t8_share_about_8_kbit(self, mpeg2):
        # Section III: "t6, t7 and t8 share about 8kb registers".
        register_map = mpeg2.register_map()
        shared = (
            register_map.registers_of("t6")
            & register_map.registers_of("t7")
            & register_map.registers_of("t8")
        )
        assert sum(register.bits for register in shared) == pytest.approx(
            8000, rel=0.05
        )

    def test_split_duplicates_about_14_4_kbit(self, mpeg2):
        # Section III: mapping {t5,t6} and {t7,t8} apart duplicates
        # ~14.4 kbit between the cores.
        register_map = mpeg2.register_map()
        together = register_map.union_bits(["t5", "t6", "t7", "t8"])
        split = register_map.union_bits(["t5", "t6"]) + register_map.union_bits(
            ["t7", "t8"]
        )
        assert split - together == pytest.approx(14400, rel=0.05)

    def test_deadline_is_437_frames_at_29_97_fps(self):
        assert MPEG2_DEADLINE_S == pytest.approx(437 / 29.97)

    def test_deadline_cycles(self):
        assert mpeg2_deadline_cycles(2e8) == pytest.approx(
            MPEG2_DEADLINE_S * 2e8, rel=1e-9
        )
        with pytest.raises(ValueError):
            mpeg2_deadline_cycles(0)

    def test_register_map_covers_all_tasks(self, mpeg2):
        register_map = mpeg2_register_map()
        for name in mpeg2.task_names():
            assert name in register_map

    def test_parallelism_exists(self, mpeg2):
        # The two IDCT pipelines and motion compensation overlap.
        assert mpeg2.critical_path_cycles() < mpeg2.total_cycles()


class TestFig8:
    def test_six_tasks_with_published_costs(self, fig8):
        units = {"t1": 5, "t2": 4, "t3": 4, "t4": 5, "t5": 6, "t6": 4}
        for name, expected in units.items():
            assert fig8.task(name).cycles == expected * FIG8_COST_UNIT_CYCLES

    def test_register_table_verbatim(self):
        register_map = fig8_register_map()
        # Fig. 8(b): r4 is the largest block at 5120 bits.
        r4 = next(
            register
            for register in register_map.registers_of("t2")
            if register.name == "r4"
        )
        assert r4.bits == 5120

    def test_task_register_sets_verbatim(self):
        register_map = fig8_register_map()
        names = {register.name for register in register_map.registers_of("t5")}
        assert names == {"r6", "r7", "r8"}

    def test_sharing_structure(self, fig8):
        register_map = fig8.register_map()
        # t2 and t3 share r4, r5, r6 = 5120 + 4096 + 2048.
        assert register_map.shared_bits("t2", "t3") == 5120 + 4096 + 2048
        # t1 and t6 share nothing.
        assert register_map.shared_bits("t1", "t6") == 0

    def test_constants(self):
        assert FIG8_DEADLINE_S == pytest.approx(0.075)
        assert FIG8_SCALING == (1, 2, 2)

    def test_is_valid_dag(self, fig8):
        fig8.validate()
        assert fig8.entry_tasks() == ("t1",)
        # The figure's bottom row: t4, t5 and t6 are the exits.
        assert set(fig8.exit_tasks()) == {"t4", "t5", "t6"}

    def test_paper_mapping_meets_deadline(self, fig8):
        from repro.arch import MPSoC
        from repro.mapping import MappingEvaluator
        from repro.taskgraph.examples import fig8_paper_mapping

        evaluator = MappingEvaluator(
            fig8, MPSoC.paper_reference(3), deadline_s=FIG8_DEADLINE_S
        )
        point = evaluator.evaluate(fig8_paper_mapping(), FIG8_SCALING)
        assert point.meets_deadline
        assert point.makespan_s == pytest.approx(0.0735)


class TestRandomGraphs:
    def test_reproducible(self):
        config = RandomGraphConfig(num_tasks=30)
        a = random_task_graph(config, seed=42)
        b = random_task_graph(config, seed=42)
        assert list(a.edges()) == list(b.edges())
        assert [t.cycles for t in a.tasks()] == [t.cycles for t in b.tasks()]

    def test_different_seeds_differ(self):
        config = RandomGraphConfig(num_tasks=30)
        a = random_task_graph(config, seed=1)
        b = random_task_graph(config, seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_costs_within_paper_ranges(self):
        config = RandomGraphConfig(num_tasks=50)
        graph = random_task_graph(config, seed=7)
        for task in graph:
            units = task.cycles // config.cost_unit_cycles
            assert 1 <= units <= 30
        for _, _, comm in graph.edges():
            units = comm // config.cost_unit_cycles
            assert 1 <= units <= 10

    def test_connected_from_entries(self):
        graph = random_task_graph(RandomGraphConfig(num_tasks=40), seed=3)
        entries = set(graph.entry_tasks())
        reachable = set(entries)
        for entry in entries:
            reachable |= graph.descendants(entry)
        assert reachable == set(graph.task_names())

    def test_acyclic(self):
        for seed in range(5):
            graph = random_task_graph(RandomGraphConfig(num_tasks=25), seed=seed)
            assert graph.is_acyclic()

    def test_deadline_rule(self):
        # 1000 * N / 2 ms.
        assert RandomGraphConfig(num_tasks=60).deadline_s == pytest.approx(30.0)

    def test_max_dependents_bound(self):
        assert RandomGraphConfig(num_tasks=20).max_dependents == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": 1},
            {"num_tasks": 10, "min_comp_units": 0},
            {"num_tasks": 10, "min_comm_units": 5, "max_comm_units": 2},
            {"num_tasks": 10, "min_register_bits": 0},
            {"num_tasks": 10, "mean_dependents": -1.0},
            {"num_tasks": 10, "shared_bits_per_comm_unit": -1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            RandomGraphConfig(**kwargs)

    def test_edges_carry_shared_buffers(self):
        graph = random_task_graph(RandomGraphConfig(num_tasks=20), seed=11)
        register_map = graph.register_map()
        shared_pairs = [
            (producer, consumer)
            for producer, consumer, _ in graph.edges()
            if register_map.shared_bits(producer, consumer) > 0
        ]
        assert shared_pairs  # every edge shares its buffer


class TestSyntheticGenerators:
    def test_pipeline_structure(self):
        graph = pipeline_graph(5)
        assert graph.num_tasks == 5
        assert graph.num_edges == 4
        assert graph.entry_tasks() == ("t1",)
        assert graph.exit_tasks() == ("t5",)

    def test_pipeline_neighbours_share_stage_buffer(self):
        graph = pipeline_graph(4, shared_bits=512)
        register_map = graph.register_map()
        assert register_map.shared_bits("t2", "t3") == 512
        assert register_map.shared_bits("t1", "t3") == 0

    def test_pipeline_rejects_empty(self):
        with pytest.raises(ValueError):
            pipeline_graph(0)

    def test_fork_join_structure(self):
        graph = fork_join_graph(6)
        assert graph.num_tasks == 8
        assert set(graph.successors("source")) == {f"b{i}" for i in range(1, 7)}
        assert set(graph.predecessors("sink")) == {f"b{i}" for i in range(1, 7)}

    def test_fork_join_branches_share_scatter(self):
        graph = fork_join_graph(3, shared_bits=256)
        register_map = graph.register_map()
        assert register_map.shared_bits("b1", "b2") == 256

    def test_layered_structure(self):
        graph = layered_graph(3, 4, seed=5)
        assert graph.num_tasks == 12
        graph.validate()
        # Every non-first-layer task has a predecessor.
        for layer in (1, 2):
            for slot in range(4):
                assert graph.predecessors(f"l{layer}n{slot}")

    def test_layered_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            layered_graph(2, 2, edge_probability=1.5)

    def test_layered_reproducible(self):
        a = layered_graph(3, 3, seed=9)
        b = layered_graph(3, 3, seed=9)
        assert list(a.edges()) == list(b.edges())
