"""Tests for the bundled workload library."""

import pytest

from repro.arch import MPSoC
from repro.mapping import Mapping, MappingEvaluator
from repro.optim import DesignOptimizer, sea_mapper
from repro.taskgraph.workloads import (
    CONTROL_DEADLINE_S,
    FFT_DEADLINE_S,
    JPEG_DEADLINE_S,
    WORKLOADS,
    automotive_cruise_control,
    fft8_graph,
    jpeg_encoder,
)


class TestJpegEncoder:
    def test_structure(self):
        graph = jpeg_encoder()
        graph.validate()
        assert graph.num_tasks == 8
        assert graph.entry_tasks() == ("rgb2yuv",)
        assert graph.exit_tasks() == ("huffman",)

    def test_luma_chroma_parallelism(self):
        graph = jpeg_encoder()
        # dct_y and dct_c are not ancestors of each other.
        assert "dct_c" not in graph.descendants("dct_y")
        assert "dct_y" not in graph.descendants("dct_c")

    def test_stage_buffers_shared(self):
        register_map = jpeg_encoder().register_map()
        assert register_map.shared_bits("dct_y", "quant_y") == 5600
        assert register_map.shared_bits("quant_y", "quant_c") == 2400
        assert register_map.shared_bits("rgb2yuv", "huffman") == 0

    def test_optimizable(self):
        outcome = DesignOptimizer(
            jpeg_encoder(),
            MPSoC.paper_reference(3),
            deadline_s=JPEG_DEADLINE_S,
            mapper=sea_mapper(search_iterations=150),
            stop_after_feasible=2,
            seed=0,
        ).optimize()
        assert outcome.best is not None


class TestFFT8:
    def test_structure(self):
        graph = fft8_graph()
        graph.validate()
        assert graph.num_tasks == 12  # 3 stages x 4 butterflies
        assert len(graph.entry_tasks()) == 4
        assert len(graph.exit_tasks()) == 4

    def test_stage_parallelism(self):
        graph = fft8_graph()
        # Butterflies within a stage are mutually independent.
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert f"s1b{b}" not in graph.descendants(f"s1b{a}")

    def test_twiddles_shared_by_all(self):
        graph = fft8_graph()
        register_map = graph.register_map()
        assert register_map.shared_bits("s0b0", "s2b3") == 3200

    def test_spreading_duplicates_twiddles(self):
        from repro.mapping.metrics import total_register_bits

        graph = fft8_graph()
        localized = Mapping.all_on_core(graph, 4, 0)
        spread = Mapping.round_robin(graph, 4)
        assert (
            total_register_bits(graph, spread)
            - total_register_bits(graph, localized)
            >= 3 * 3200  # twiddle table copied to the extra cores
        )

    def test_spreading_shortens_makespan(self):
        graph = fft8_graph()
        evaluator = MappingEvaluator(graph, MPSoC.paper_reference(4))
        localized = evaluator.evaluate(Mapping.all_on_core(graph, 4, 0), (1, 1, 1, 1))
        spread = evaluator.evaluate(Mapping.round_robin(graph, 4), (1, 1, 1, 1))
        assert spread.makespan_s < localized.makespan_s


class TestCruiseControl:
    def test_structure(self):
        graph = automotive_cruise_control()
        graph.validate()
        assert graph.num_tasks == 9
        assert set(graph.entry_tasks()) == {"radar", "wheel_speed", "gps"}
        assert set(graph.exit_tasks()) == {"throttle", "brake", "logging"}

    def test_actuation_shares_command_buffer(self):
        register_map = automotive_cruise_control().register_map()
        assert register_map.shared_bits("throttle", "brake") == 1600

    def test_deadline_is_tight_but_feasible(self):
        graph = automotive_cruise_control()
        evaluator = MappingEvaluator(
            graph, MPSoC.paper_reference(2), deadline_s=CONTROL_DEADLINE_S
        )
        # Feasible at nominal on two cores, infeasible fully scaled.
        nominal = evaluator.evaluate(Mapping.round_robin(graph, 2), (1, 1))
        deep = evaluator.evaluate(Mapping.round_robin(graph, 2), (3, 3))
        assert nominal.meets_deadline
        assert not deep.meets_deadline


class TestRegistry:
    def test_registry_complete(self):
        assert set(WORKLOADS) == {"jpeg", "fft8", "cruise-control"}
        for name, (factory, deadline) in WORKLOADS.items():
            graph = factory()
            graph.validate()
            assert deadline > 0

    def test_deadlines_exported(self):
        assert JPEG_DEADLINE_S == pytest.approx(1.2)
        assert FFT_DEADLINE_S == pytest.approx(0.09)
        assert CONTROL_DEADLINE_S == pytest.approx(0.1)
